//! The wall-clock telemetry sidecar of a result store.
//!
//! The store is *byte-deterministic*: equal campaigns write equal
//! bytes, which is what makes golden tests, shard merges and the CI
//! regression gates meaningful. Wall-clock measurements are the
//! opposite — they vary run to run by construction — so they must never
//! enter the store. This module keeps them in an append-only sidecar
//! beside it (`store.json` → `store.json.telemetry`, JSON lines,
//! fsync-batched exactly like the crash-resume journal): every freshly
//! executed cell records its measured duration, and every access —
//! fresh *or* memoized — records a last-hit timestamp.
//!
//! Clocks: measured *durations* come from the process-wide monotonic
//! epoch ([`crate::obs::monotonic_ns`], the clock the executor times
//! cells with), so a wall-clock step can never record a negative
//! duration. The wall clock ([`now_ms`]) is used only for last-access
//! *timestamps*, where calendar time is the point. Old sidecars
//! written before this split may still carry negative or non-finite
//! durations from a clock step; replay clamps those values to zero
//! instead of treating the line as corruption.
//!
//! Three consumers read the sidecar back:
//!
//! * `campaign plan --calibrate` derives per-scenario cost weights from
//!   the *measured* mean cell duration instead of the metric-magnitude
//!   proxy, whenever a sidecar accompanies the baseline store
//!   ([`crate::dist::plan::calibrate_weights_wall`]);
//! * `campaign merge --report` joins per-shard sidecars with the
//!   work-stealing lease files into a realized wall-clock balance
//!   report ([`crate::dist::merge::steal_report`]);
//! * `campaign gc --max-age-days N` evicts cells whose last recorded
//!   hit is too old ([`crate::store::MaxAge`]) — the access log the
//!   byte-deterministic store itself can never carry.
//!
//! Telemetry is advisory everywhere: deleting the sidecar loses
//! calibration and age data, never results, and a campaign run with
//! telemetry enabled writes a store byte-identical to one without.

use crate::json::Json;
use crate::scenario::ScenarioError;
use crate::store::{replay_sidecar_lines, write_atomic, AppendLog};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Bump when the line layout changes; lines of other schemas are
/// skipped on load (telemetry is advisory — old measurements are
/// simply forgotten, never misread).
pub const TELEMETRY_SCHEMA: u32 = 1;

/// Default fsync batch for the telemetry log when the campaign did not
/// choose a journal batch (`--checkpoint-every`) to inherit.
pub const DEFAULT_TELEMETRY_BATCH: usize = 64;

/// The telemetry sidecar of a store: `store.json` →
/// `store.json.telemetry`.
pub fn telemetry_path(store: &Path) -> PathBuf {
    let mut name = store.file_name().unwrap_or_default().to_os_string();
    name.push(".telemetry");
    store.with_file_name(name)
}

/// "Now" in Unix epoch milliseconds — the sidecar's timestamp unit.
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// One cell's aggregated telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEntry {
    /// Scenario id (recorded per line so consumers can aggregate by
    /// scenario without joining against the store).
    pub scenario: String,
    /// Fresh executions recorded.
    pub runs: u64,
    /// Total measured wall-clock time of those executions, in
    /// nanoseconds.
    pub wall_ns: f64,
    /// Most recent access (fresh or memoized), Unix epoch milliseconds.
    pub last_hit_ms: u64,
}

/// The aggregated view of a telemetry sidecar: fingerprint → entry.
/// Loading replays the event log and folds repeated events per cell;
/// the in-memory aggregate is also directly constructible
/// ([`Telemetry::record_fresh`] / [`Telemetry::record_hit`]) for tests
/// and tools.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    entries: BTreeMap<String, TelemetryEntry>,
}

impl Telemetry {
    /// An empty aggregate.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Number of cells with any telemetry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One cell's aggregate, if any event was recorded for it.
    pub fn get(&self, fp: &str) -> Option<&TelemetryEntry> {
        self.entries.get(fp)
    }

    /// All entries, in fingerprint order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TelemetryEntry)> {
        self.entries.iter().map(|(fp, e)| (fp.as_str(), e))
    }

    /// A cell's most recent access, if recorded.
    pub fn last_hit_ms(&self, fp: &str) -> Option<u64> {
        self.entries.get(fp).map(|e| e.last_hit_ms)
    }

    /// Folds one event into the aggregate.
    fn record(&mut self, fp: &str, scenario: &str, runs: u64, wall_ns: f64, at_ms: u64) {
        let entry = self
            .entries
            .entry(fp.to_string())
            .or_insert_with(|| TelemetryEntry {
                scenario: scenario.to_string(),
                runs: 0,
                wall_ns: 0.0,
                last_hit_ms: 0,
            });
        entry.runs += runs;
        entry.wall_ns += wall_ns;
        entry.last_hit_ms = entry.last_hit_ms.max(at_ms);
    }

    /// Folds in one fresh execution of `wall` at `at_ms`.
    pub fn record_fresh(&mut self, fp: &str, scenario: &str, wall: Duration, at_ms: u64) {
        self.record(fp, scenario, 1, wall.as_nanos() as f64, at_ms);
    }

    /// Folds in one memoized hit at `at_ms` (access timestamp only).
    pub fn record_hit(&mut self, fp: &str, scenario: &str, at_ms: u64) {
        self.record(fp, scenario, 0, 0.0, at_ms);
    }

    /// Drops entries whose fingerprint fails `keep` (the GC pass prunes
    /// the sidecar alongside the store).
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.entries.retain(|fp, _| keep(fp));
    }

    /// Cells with at least one recorded fresh execution.
    pub fn executed_cells(&self) -> usize {
        self.entries.values().filter(|e| e.runs > 0).count()
    }

    /// Total measured wall-clock nanoseconds across every cell.
    pub fn total_wall_ns(&self) -> f64 {
        self.entries.values().map(|e| e.wall_ns).sum()
    }

    /// The mean measured wall-clock nanoseconds per fresh execution of
    /// one scenario's cells; `None` when no execution was recorded.
    pub fn scenario_wall_mean_ns(&self, scenario: &str) -> Option<f64> {
        let (runs, wall_ns) = self
            .entries
            .values()
            .filter(|e| e.scenario == scenario)
            .fold((0u64, 0.0f64), |(r, w), e| (r + e.runs, w + e.wall_ns));
        (runs > 0).then(|| wall_ns / runs as f64)
    }

    /// Loads and aggregates a sidecar; a missing file is an empty
    /// aggregate (telemetry is optional everywhere). A torn final line
    /// — a kill mid-append — is skipped; torn bytes anywhere earlier
    /// are real corruption and error, exactly like the journal.
    pub fn load(path: &Path) -> Result<Telemetry, ScenarioError> {
        let mut telemetry = Telemetry::new();
        if !path.exists() {
            return Ok(telemetry);
        }
        replay_sidecar_lines(path, &mut |doc| {
            if let Some(event) = parse_event(doc)? {
                telemetry.record(
                    &event.fp,
                    &event.scenario,
                    event.runs,
                    event.wall_ns,
                    event.at_ms,
                );
            }
            Ok(())
        })?;
        Ok(telemetry)
    }

    /// Loads the sidecar beside a store, if any.
    pub fn load_for_store(store: &Path) -> Result<Telemetry, ScenarioError> {
        Telemetry::load(&telemetry_path(store))
    }

    /// Rewrites a sidecar as its compacted aggregate: one line per
    /// fingerprint instead of the whole event history. Atomic + durable
    /// like a store save. (The GC pass uses this to prune entries of
    /// evicted cells; the result replays to the identical aggregate.)
    pub fn save_compacted(&self, path: &Path) -> Result<(), ScenarioError> {
        let mut text = String::new();
        for (fp, entry) in &self.entries {
            text.push_str(&event_line(
                fp,
                &entry.scenario,
                entry.runs,
                entry.wall_ns,
                entry.last_hit_ms,
            ));
            text.push('\n');
        }
        write_atomic(path, text.as_bytes())
    }
}

/// One parsed sidecar event.
struct Event {
    fp: String,
    scenario: String,
    runs: u64,
    wall_ns: f64,
    at_ms: u64,
}

/// Renders one event line (compact JSON, no trailing newline).
fn event_line(fp: &str, scenario: &str, runs: u64, wall_ns: f64, at_ms: u64) -> String {
    Json::Obj(vec![
        ("schema".into(), Json::Num(TELEMETRY_SCHEMA as f64)),
        ("fp".into(), Json::str(fp)),
        ("scenario".into(), Json::str(scenario)),
        ("runs".into(), Json::Num(runs as f64)),
        ("wall_ns".into(), Json::Num(wall_ns)),
        ("at_ms".into(), Json::Num(at_ms as f64)),
    ])
    .compact()
}

/// Parses one event line. `Ok(None)` means another telemetry schema
/// (skipped — old measurements are forgotten, not misread).
fn parse_event(doc: &Json) -> Result<Option<Event>, String> {
    let schema = doc.get("schema").and_then(Json::as_f64).unwrap_or(0.0) as u32;
    if schema != TELEMETRY_SCHEMA {
        return Ok(None);
    }
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("event without {key}"));
    // A missing or non-numeric field is corruption (torn-tail rules
    // apply), but a negative or non-finite *value* is clamped to zero:
    // sidecars written before durations moved to the monotonic clock
    // can carry negative wall times from a wall-clock step, and one
    // stepped-clock line must not poison the whole aggregate.
    let num = |key: &str| {
        let v = field(key)?.as_f64().ok_or_else(|| format!("bad {key}"))?;
        Ok::<f64, String>(if v.is_finite() && v >= 0.0 { v } else { 0.0 })
    };
    Ok(Some(Event {
        fp: field("fp")?.as_str().ok_or("bad fp")?.to_string(),
        scenario: field("scenario")?
            .as_str()
            .ok_or("bad scenario")?
            .to_string(),
        runs: num("runs")? as u64,
        wall_ns: num("wall_ns")?,
        at_ms: num("at_ms")? as u64,
    }))
}

/// The append-only telemetry event log beside a store: one event per
/// JSON line, flushed on every append, fsync'd every `batch` events,
/// torn tail healed on open — the [`AppendLog`] machinery the journal
/// uses, pointed at the `.telemetry` sidecar. I/O failures are sticky
/// and surfaced by [`TelemetryLog::finish`], so the executor's timing
/// sink (called from worker threads) never has to unwind.
#[derive(Debug)]
pub struct TelemetryLog {
    log: AppendLog,
}

impl TelemetryLog {
    /// Opens (creating if missing) the telemetry log beside
    /// `store_path`, fsyncing every `batch` appended events.
    pub fn open(store_path: &Path, batch: usize) -> Result<TelemetryLog, ScenarioError> {
        Ok(TelemetryLog {
            log: AppendLog::open(telemetry_path(store_path), batch)?,
        })
    }

    /// The log file's location.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// Attaches a span recorder: appends and fsync batches show up as
    /// `telemetry/append` / `telemetry/fsync` spans.
    pub fn observe(&mut self, obs: &crate::obs::Obs) {
        self.log.observe(obs, "telemetry");
    }

    /// Appends one fresh-execution event.
    pub fn record_fresh(&mut self, fp: &str, scenario: &str, wall: Duration, at_ms: u64) {
        self.log
            .append_line(&event_line(fp, scenario, 1, wall.as_nanos() as f64, at_ms));
    }

    /// Appends one memoized-hit event (access timestamp only).
    pub fn record_hit(&mut self, fp: &str, scenario: &str, at_ms: u64) {
        self.log
            .append_line(&event_line(fp, scenario, 0, 0.0, at_ms));
    }

    /// Forces any unsynced batch to disk.
    pub fn sync(&mut self) {
        self.log.sync();
    }

    /// Final sync; surfaces the first I/O failure of the log's
    /// lifetime, if any.
    pub fn finish(self) -> Result<(), ScenarioError> {
        self.log.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("harness-telemetry-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn events_aggregate_per_cell_and_per_scenario() {
        let mut t = Telemetry::new();
        t.record_fresh("aaaa", "s1", Duration::from_nanos(100), 10);
        t.record_hit("aaaa", "s1", 25);
        t.record_fresh("bbbb", "s1", Duration::from_nanos(300), 20);
        t.record_fresh("cccc", "s2", Duration::from_nanos(50), 5);
        t.record_hit("dddd", "s2", 7);
        assert_eq!(t.len(), 4);
        assert_eq!(t.last_hit_ms("aaaa"), Some(25));
        assert_eq!(t.get("aaaa").unwrap().runs, 1);
        assert_eq!(t.executed_cells(), 3);
        assert_eq!(t.total_wall_ns(), 450.0);
        assert_eq!(t.scenario_wall_mean_ns("s1"), Some(200.0));
        assert_eq!(t.scenario_wall_mean_ns("s2"), Some(50.0));
        assert_eq!(t.scenario_wall_mean_ns("absent"), None);
        // A hit-only cell contributes no mean (dddd alone would divide
        // by zero runs).
        let mut hits_only = Telemetry::new();
        hits_only.record_hit("dddd", "s3", 7);
        assert_eq!(hits_only.scenario_wall_mean_ns("s3"), None);
    }

    #[test]
    fn log_round_trips_through_load() {
        let dir = tempdir("roundtrip");
        let store = dir.join("store.json");
        let mut log = TelemetryLog::open(&store, 2).unwrap();
        log.record_fresh("aaaa", "s", Duration::from_micros(3), 100);
        log.record_hit("aaaa", "s", 200);
        log.record_fresh("bbbb", "s", Duration::from_micros(1), 150);
        log.finish().unwrap();
        let t = Telemetry::load_for_store(&store).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("aaaa").unwrap().wall_ns, 3000.0);
        assert_eq!(t.last_hit_ms("aaaa"), Some(200));
        assert_eq!(t.get("bbbb").unwrap().runs, 1);
        // Missing sidecar loads empty.
        assert!(Telemetry::load_for_store(&dir.join("other.json"))
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped_on_load_and_healed_on_open() {
        let dir = tempdir("torn");
        let store = dir.join("store.json");
        let mut log = TelemetryLog::open(&store, 1).unwrap();
        log.record_fresh("aaaa", "s", Duration::from_nanos(10), 1);
        log.finish().unwrap();
        let path = telemetry_path(&store);
        let mut text = std::fs::read_to_string(&path).unwrap();
        let complete = text.clone();
        text.push_str("{\"schema\":1,\"fp\":\"to");
        std::fs::write(&path, &text).unwrap();
        // Load skips the torn tail.
        let t = Telemetry::load(&path).unwrap();
        assert_eq!(t.len(), 1);
        // Re-opening heals it: the torn bytes are truncated away.
        let log = TelemetryLog::open(&store, 1).unwrap();
        log.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), complete);
        // The same garbage mid-file is corruption, not a torn tail.
        let mut torn_middle = String::from("{\"schema\":1,\"fp\":\"to\n");
        torn_middle.push_str(&complete);
        std::fs::write(&path, &torn_middle).unwrap();
        assert!(Telemetry::load(&path).is_err());
        // Lines of another schema are skipped, not misread.
        std::fs::write(&path, "{\"schema\":99,\"fp\":\"aaaa\"}\n").unwrap();
        assert!(Telemetry::load(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_or_nonfinite_durations_clamp_instead_of_poisoning() {
        let dir = tempdir("clamp");
        let path = dir.join("store.json.telemetry");
        // An old sidecar whose first line recorded a negative duration
        // across a wall-clock step, mid-file (so no torn-tail leniency
        // applies), plus NaN/∞ variants.
        std::fs::write(
            &path,
            concat!(
                "{\"schema\":1,\"fp\":\"aaaa\",\"scenario\":\"s\",\"runs\":1,\"wall_ns\":-5000,\"at_ms\":10}\n",
                "{\"schema\":1,\"fp\":\"aaaa\",\"scenario\":\"s\",\"runs\":1,\"wall_ns\":1e999,\"at_ms\":20}\n",
                "{\"schema\":1,\"fp\":\"bbbb\",\"scenario\":\"s\",\"runs\":1,\"wall_ns\":250,\"at_ms\":30}\n",
            ),
        )
        .unwrap();
        let t = Telemetry::load(&path).unwrap();
        assert_eq!(t.len(), 2);
        // Clamped to zero, not dropped: the runs still count, the bad
        // durations contribute nothing.
        assert_eq!(t.get("aaaa").unwrap().runs, 2);
        assert_eq!(t.get("aaaa").unwrap().wall_ns, 0.0);
        assert_eq!(t.last_hit_ms("aaaa"), Some(20));
        assert_eq!(t.get("bbbb").unwrap().wall_ns, 250.0);
        // A missing numeric field is still corruption mid-file.
        std::fs::write(
            &path,
            concat!(
                "{\"schema\":1,\"fp\":\"aaaa\",\"scenario\":\"s\",\"runs\":1,\"at_ms\":10}\n",
                "{\"schema\":1,\"fp\":\"bbbb\",\"scenario\":\"s\",\"runs\":1,\"wall_ns\":250,\"at_ms\":30}\n",
            ),
        )
        .unwrap();
        assert!(Telemetry::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_the_aggregate_and_prunes_retained() {
        let dir = tempdir("compact");
        let store = dir.join("store.json");
        let mut log = TelemetryLog::open(&store, 1).unwrap();
        for at in [10, 20, 30] {
            log.record_fresh("aaaa", "s", Duration::from_nanos(100), at);
        }
        log.record_hit("bbbb", "s", 40);
        log.finish().unwrap();
        let path = telemetry_path(&store);
        let mut t = Telemetry::load(&path).unwrap();
        t.retain(|fp| fp != "bbbb");
        t.save_compacted(&path).unwrap();
        let back = Telemetry::load(&path).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), 1);
        assert_eq!(back.get("aaaa").unwrap().runs, 3);
        assert_eq!(back.get("aaaa").unwrap().wall_ns, 300.0);
        assert_eq!(back.last_hit_ms("aaaa"), Some(30));
        // One line per fingerprint after compaction.
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
