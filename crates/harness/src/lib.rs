//! # harness
//!
//! The scenario-matrix evaluation engine: the subsystem that turns
//! every simulator crate in this workspace into a registered, runnable
//! workload and executes whole experiment *campaigns* over them.
//!
//! The paper's template (a property to be predicted × sources of
//! uncertainty × a quality measure) only yields *evidence* when
//! instantiated over many concrete systems. This crate is that
//! instantiation engine, in four layers:
//!
//! * [`scenario`] + [`scenarios`] — the [`Scenario`] trait and
//!   declarative [`ScenarioSpec`] (system under test, uncertainty axes,
//!   quality metrics), with built-in registrations covering cache
//!   replacement (`mem-hierarchy`), in-order vs. out-of-order pipelines
//!   including the domino example (`pipeline-sim`), DRAM refresh and
//!   controllers (`dram-sim`), bus arbitration (`interconnect-sim`),
//!   branch predictors (`branch-pred`), WCET bound tightness
//!   (`wcet-analysis`), single-path conversion (`singlepath`) and
//!   dynamical-system horizons (`dynsys`).
//! * [`matrix`] — lazy matrix enumeration: [`matrix::CellIter`]
//!   decodes any cell from its row-major index in constant memory, so
//!   planning and sharding sweep multi-million-cell matrices without
//!   materializing them.
//! * [`exec`] — the streaming parallel executor: workers pull lazy
//!   cell indices from a shared cursor, decode/filter/memo-check each
//!   on the fly and buffer outcomes in private per-worker slots (no
//!   shared lock on the hot path); deterministic per-cell seeding and
//!   global-index assembly make results identical whether the campaign
//!   ran on one thread or sixteen. [`exec::ExecHooks`] stream progress
//!   and completed results out as they happen.
//! * [`store`] — the memoizing [`ResultStore`]: completed cells are
//!   keyed by a fingerprint of `(schema, scenario, params, seed)` and
//!   persist as deterministic JSON; re-running a campaign executes only
//!   cells the store has never seen. An append-only [`store::Journal`]
//!   beside the checkpoint file makes campaigns *crash-resumable*:
//!   every completed cell is journaled (fsync'd per batch), a SIGKILL'd
//!   campaign resumes from the last completed cell via
//!   [`ResultStore::open_resumable`], and `checkpoint()` compacts the
//!   pair atomically.
//! * [`obs`] — the engine instrumentation layer: named
//!   monotonic-clock spans and counters around the whole campaign
//!   lifecycle (plan, decode, memo lookup, journal append/fsync,
//!   checkpoint, steal-lease claim, merge), exported as a Chrome
//!   trace-event file (`--trace FILE`, loadable in Perfetto) and as
//!   the aggregated summary behind `campaign bench`'s committed
//!   `BENCH_exec.json` / `BENCH_store.json` perf trajectory. Attaching
//!   an [`obs::Obs`] never changes store bytes.
//! * [`telemetry`] — the wall-clock sidecar: an append-only,
//!   fsync-batched event log beside the store (`store.json.telemetry`)
//!   recording per-cell measured durations and last-hit access
//!   timestamps via [`exec::ExecHooks::on_timing`] — keeping time out
//!   of the byte-deterministic store while feeding measured cost
//!   calibration (`plan --calibrate`), steal-aware merge reports
//!   (`merge --report`) and age-based GC (`gc --max-age-days`).
//! * [`report`] — campaign serialization (JSON/CSV) and the Table-1/2
//!   style evidence summary joining results against
//!   `predictability_core::catalog`; driven by the `campaign` CLI
//!   (`cargo run -p harness --bin campaign`).
//! * [`dist`] — the distributed layer: a deterministic *streaming*
//!   shard planner and manifest (per-scenario cost weights included), a
//!   one-shard-per-process worker mode, dynamic work stealing between
//!   shard processes over lease files ([`dist::steal`]), a merge
//!   engine that fuses shard stores into the byte-identical
//!   single-process store, and a cell-by-cell campaign differ with
//!   per-metric tolerances (the CI regression gate). See the `plan` /
//!   `shard` / `merge` / `diff` subcommands of the campaign CLI.
//! * [`serve`] — the always-on campaign daemon: `campaign serve`
//!   keeps a store resident behind a hot interned index
//!   ([`serve::index::StoreIndex`]) and answers point/range metric
//!   queries, report renders and new campaign submissions over a
//!   line-delimited JSON TCP protocol (std only, thread-per-connection
//!   behind a bounded accept pool). Submitted campaigns run on the
//!   streaming executor with crash-resume journaling and publish into
//!   the live index atomically; graceful shutdown drains, checkpoints
//!   and fsyncs, leaving a store byte-identical to the batch run's. A
//!   `store.json.lock` pidfile ([`serve::lock`]) keeps `gc`/`merge`
//!   from racing a live daemon, with dead-owner locks detected as
//!   stale and broken automatically.
//! * [`gen`] — generated-program sweeps: a deterministic corpus of
//!   `tinyisa::codegen` programs whose shape (`depth`, `stmts`,
//!   `loop_iters`, `program_index`) is exposed as matrix axes, swept
//!   through the pipeline/cache/WCET backends (`gen/pipeline`,
//!   `gen/cache`, `gen/wcet`) with per-kernel template metrics; the
//!   corpus digest enters fingerprints and shard manifests so corpus
//!   drift is caught like registry drift.
//!
//! ## Quickstart
//!
//! ```
//! use harness::exec::{run_campaign, ExecConfig};
//! use harness::matrix::Filter;
//! use harness::registry::Registry;
//! use harness::store::ResultStore;
//!
//! let registry = Registry::builtin();
//! let mut store = ResultStore::new();
//! let campaign = run_campaign(
//!     &registry,
//!     &["pipeline-domino".to_string()],
//!     &Filter::all().with("n", "16"),
//!     &ExecConfig { threads: 4, seed: 42, ..ExecConfig::default() },
//!     &mut store,
//! )
//! .unwrap();
//! assert_eq!(campaign.cells.len(), 1);
//! let sipr = campaign.cells[0].result.metric("sipr").unwrap();
//! assert!((sipr - (9.0 * 16.0 + 1.0) / (12.0 * 16.0)).abs() < 1e-12);
//!
//! // A second run against the same store executes zero cells.
//! let again = run_campaign(
//!     &registry,
//!     &["pipeline-domino".to_string()],
//!     &Filter::all().with("n", "16"),
//!     &ExecConfig { threads: 4, seed: 42, ..ExecConfig::default() },
//!     &mut store,
//! )
//! .unwrap();
//! assert_eq!(again.executed, 0);
//! ```

pub mod dist;
pub mod exec;
pub mod expect;
pub mod gen;
pub mod json;
pub mod matrix;
pub mod obs;
pub mod registry;
pub mod report;
pub mod scenario;
pub mod scenarios;
pub mod serve;
pub mod store;
pub mod telemetry;

pub use dist::{diff_stores, merge_stores, DiffReport, LeaseDir, Manifest, Tolerances};
pub use exec::{
    run_campaign, run_campaign_shard, run_campaign_with, Campaign, CampaignCell, CellDomain,
    ExecConfig, ExecHooks, ExecProgress, Shard,
};
pub use expect::{fold_results, replicate_seed, Accumulator, Moments, DERIVED_SUFFIXES};
pub use gen::{Corpus, GenOptions};
pub use matrix::{CellIter, Filter};
pub use obs::Obs;
pub use registry::Registry;
pub use scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
pub use serve::{ServeOptions, ServeSummary, Server, ServerHandle};
pub use store::{CompactingJournal, Journal, OpenedStore, ResultStore, StoreFormat};
pub use telemetry::{Telemetry, TelemetryLog};
