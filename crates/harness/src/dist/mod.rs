//! # dist — sharded multi-process campaign execution
//!
//! Scales the campaign engine past a single process by turning a
//! campaign into a *shardable, mergeable, diffable* artifact:
//!
//! * [`plan`] — deterministically partitions the expanded scenario
//!   matrix into N disjoint shards by cell fingerprint and captures the
//!   campaign in a small [`Manifest`]; any worker holding the manifest
//!   computes the identical partition, so there is no coordinator.
//! * [`run_shard`] — the worker mode: re-expands the manifest, checks
//!   for registry drift, and runs exactly shard `i/N` (thread-fanned
//!   inside the process) against its own [`ResultStore`].
//! * [`merge`] — fuses shard stores into one canonical store,
//!   aborting on fingerprint collisions with conflicting results (a
//!   determinism violation) and optionally verifying the fused store
//!   covers exactly the planned cell set ([`merge::verify_coverage`]).
//! * [`diff`] — compares two stores cell-by-cell under per-metric
//!   tolerances; the store-backed regression gate ("did a simulator
//!   change move any metric?").
//! * [`steal`] — dynamic work stealing: the static partition becomes
//!   an *initial lease* over cost-weighted chunks of the lazy cell
//!   space, and idle shards steal unleased chunks through atomic
//!   lease files in a shared campaign directory
//!   ([`steal::run_shard_stealing`]).
//!
//! The invariant the whole layer rests on, inherited from the
//! executor's per-cell seeding: *shard runs merge to the byte-identical
//! store a single-process run would have written.*
//!
//! ```
//! use harness::dist::{self, diff::{diff_stores, Tolerances}, merge::merge_stores};
//! use harness::exec::{run_campaign, ExecConfig};
//! use harness::matrix::Filter;
//! use harness::registry::Registry;
//! use harness::store::ResultStore;
//!
//! let registry = Registry::builtin();
//! let select = vec!["pipeline-domino".to_string()];
//!
//! // Plan 2 shards, run each against its own store, merge.
//! let manifest = dist::plan(&registry, &select, &[], 42, 2).unwrap();
//! let mut shard_stores = Vec::new();
//! for index in 0..manifest.shards {
//!     let mut store = ResultStore::new();
//!     dist::run_shard(&registry, &manifest, index, 2, &mut store).unwrap();
//!     shard_stores.push(store);
//! }
//! let (fused, _stats) = merge_stores(&shard_stores).unwrap();
//! dist::merge::verify_coverage(&registry, &manifest, &fused).unwrap();
//!
//! // The fused store is byte-identical to a single-process run's.
//! let mut single = ResultStore::new();
//! run_campaign(
//!     &registry,
//!     &select,
//!     &Filter::all(),
//!     &ExecConfig { threads: 1, seed: 42, ..ExecConfig::default() },
//!     &mut single,
//! )
//! .unwrap();
//! assert_eq!(fused.to_json().pretty(), single.to_json().pretty());
//! assert!(diff_stores(&single, &fused, &Tolerances::exact()).is_empty());
//! ```

pub mod diff;
pub mod merge;
pub mod plan;
pub mod steal;

pub use diff::{diff_stores, Admitted, DiffReport, NearMiss, Tolerances};
pub use merge::{
    fold_replicates, merge_stores, merge_stores_observed, merge_stores_owned,
    merge_stores_owned_observed, steal_report, MergeStats, StealReport,
};
pub use plan::{
    calibrate_weights, calibrate_weights_wall, plan, plan_calibrated, plan_calibrated_with,
    plan_with_cells, planned_cells, visit_planned_cells, CorpusPlan, Manifest, PlannedCell,
    ScenarioPlan, WeightSource,
};
pub use steal::{chunk_map, run_shard_stealing, Chunk, LeaseDir, StealStats};

use crate::exec::{run_campaign_with, Campaign, CellDomain, ExecConfig, ExecHooks, Shard};
use crate::gen::GenOptions;
use crate::registry::Registry;
use crate::scenario::ScenarioError;
use crate::store::ResultStore;

/// The built-in registry a worker must use to claim shards of this
/// manifest: when the manifest records a generated-program corpus, the
/// registry is rebuilt over exactly that corpus identity (size + seed);
/// [`plan::check_drift`] then verifies the rematerialized population
/// digests to the planned one, so codegen drift between plan and shard
/// time is caught by name instead of silently mispartitioning.
pub fn registry_for(manifest: &Manifest) -> Registry {
    match &manifest.corpus {
        Some(corpus) => Registry::builtin_with(&GenOptions {
            corpus_size: corpus.size,
            corpus_seed: corpus.seed,
        }),
        None => Registry::builtin(),
    }
}

/// Runs exactly shard `index` of the manifest's campaign: validates the
/// index, re-streams the matrix, errors on registry drift, then
/// executes the owned cells (thread-fanned) against `store`.
pub fn run_shard(
    registry: &Registry,
    manifest: &Manifest,
    index: u32,
    threads: usize,
    store: &mut ResultStore,
) -> Result<Campaign, ScenarioError> {
    run_shard_with(
        registry,
        manifest,
        index,
        threads,
        store,
        ExecHooks::default(),
    )
}

/// [`run_shard`] with execution hooks (progress, crash-resume journal
/// sink).
pub fn run_shard_with(
    registry: &Registry,
    manifest: &Manifest,
    index: u32,
    threads: usize,
    store: &mut ResultStore,
    hooks: ExecHooks<'_>,
) -> Result<Campaign, ScenarioError> {
    let shard = Shard::new(index, manifest.shards)?;
    plan::check_drift(registry, manifest)?;
    run_campaign_with(
        registry,
        &manifest.scenarios,
        &manifest.parsed_filter()?,
        &ExecConfig {
            threads,
            seed: manifest.seed,
            replicates: manifest.replicates,
            // Shard runs never fold (the merge engine folds once all
            // shards' raw replicates are fused), so the raws must stay.
            keep_replicates: true,
        },
        store,
        CellDomain::Shard(shard),
        hooks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_shard_rejects_out_of_range_index() {
        let registry = Registry::builtin();
        let manifest = plan(&registry, &["pipeline-domino".into()], &[], 0, 2).unwrap();
        let err = run_shard(&registry, &manifest, 2, 1, &mut ResultStore::new()).unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(_)));
    }

    #[test]
    fn run_shard_detects_registry_drift() {
        let registry = Registry::builtin();
        let mut manifest = plan(&registry, &["pipeline-domino".into()], &[], 0, 2).unwrap();
        manifest.cells -= 1;
        let err = run_shard(&registry, &manifest, 0, 1, &mut ResultStore::new()).unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(ref m) if m.contains("drift")));
    }
}
