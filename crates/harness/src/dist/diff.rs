//! The campaign differ: cell-by-cell comparison of two result stores.
//!
//! This answers the ROADMAP's "did a simulator change move any
//! metric?": diff the store a changed tree produces against a committed
//! baseline store and gate CI on the result. Cells are matched by
//! fingerprint (so only genuinely comparable cells — same scenario,
//! version, params, seed — are compared metric-by-metric); cells
//! present on one side only are reported as added/removed, and metric
//! values are compared under per-metric absolute tolerances with an
//! exact-match default. Two further admission rules serve replicated
//! campaigns: a relative tolerance (`--rel`) scaling with the metric's
//! magnitude, and a statistical one (`--sigmas S`) that admits a
//! `<metric>.mean` drift within `S` standard errors of the fold cells'
//! own recorded spread. Every drift a non-exact rule admitted is kept
//! as a [`NearMiss`] naming the rule, so a gate that passed on
//! tolerance (rather than byte equality) says so explicitly.

use crate::scenario::ScenarioError;
use crate::store::ResultStore;

/// Per-metric tolerances: absolute per-metric entries plus an absolute
/// default, an optional relative band, and an optional
/// standard-error band for distribution (`expect` fold) metrics.
#[derive(Debug, Clone, Default)]
pub struct Tolerances {
    default: f64,
    per_metric: Vec<(String, f64)>,
    /// Relative tolerance: admit when `|Δ| <= rel * max(|a|, |b|)`.
    rel: f64,
    /// Standard-error tolerance for `<metric>.mean` columns of fold
    /// cells: admit when `|Δ| <= sigmas * se`, where `se` combines both
    /// sides' recorded `.std`/`.n` (`sqrt(sa²/na + sb²/nb)`).
    sigmas: Option<f64>,
}

impl Tolerances {
    /// Exact comparison: any difference counts.
    pub fn exact() -> Tolerances {
        Tolerances::default()
    }

    /// Sets the tolerance applied to metrics without their own entry.
    pub fn with_default(mut self, eps: f64) -> Tolerances {
        self.default = eps;
        self
    }

    /// Sets one metric's tolerance.
    pub fn with(mut self, metric: &str, eps: f64) -> Tolerances {
        self.per_metric.push((metric.to_string(), eps));
        self
    }

    /// Sets the relative tolerance (applies to every metric).
    pub fn with_rel(mut self, rel: f64) -> Tolerances {
        self.rel = rel;
        self
    }

    /// Sets the standard-error tolerance for fold-cell `.mean` columns.
    pub fn with_sigmas(mut self, sigmas: f64) -> Tolerances {
        self.sigmas = Some(sigmas);
        self
    }

    /// Parses `metric=eps` clauses (the CLI's `--tol` flag).
    pub fn parse(clauses: &[String]) -> Result<Tolerances, ScenarioError> {
        let mut tol = Tolerances::exact();
        for clause in clauses {
            let parsed = clause
                .split_once('=')
                .and_then(|(m, e)| e.parse::<f64>().ok().map(|e| (m, e)))
                .filter(|(m, e)| !m.is_empty() && *e >= 0.0);
            match parsed {
                Some((metric, eps)) => tol.per_metric.push((metric.to_string(), eps)),
                None => {
                    return Err(ScenarioError::Dist(format!(
                        "bad tolerance `{clause}` (expected metric=eps, eps >= 0)"
                    )))
                }
            }
        }
        Ok(tol)
    }

    /// The tolerance for one metric.
    pub fn tolerance(&self, metric: &str) -> f64 {
        self.per_metric
            .iter()
            .find(|(m, _)| m == metric)
            .map_or(self.default, |(_, eps)| *eps)
    }
}

/// One metric's change within a cell present on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Value in the baseline store (`None` = metric absent there).
    pub before: Option<f64>,
    /// Value in the compared store (`None` = metric absent there).
    pub after: Option<f64>,
}

/// One differing cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// The cell's fingerprint.
    pub fingerprint: String,
    /// Scenario id.
    pub scenario: String,
    /// Canonical parameter key.
    pub params_key: String,
    /// What changed.
    pub kind: DeltaKind,
}

/// How a cell differs between the two stores.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaKind {
    /// Present only in the compared (second) store.
    Added,
    /// Present only in the baseline (first) store.
    Removed,
    /// Present in both with metric differences beyond tolerance.
    Changed(Vec<MetricDelta>),
}

/// The tolerance rule that admitted a drifting metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// Within the absolute tolerance (`--tol` / `--tol-default`).
    Abs,
    /// Within the relative band (`--rel`).
    Rel,
    /// Within `--sigmas` standard errors of the folds' own spread.
    Sigma,
}

impl std::fmt::Display for Admitted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Admitted::Abs => "abs",
            Admitted::Rel => "rel",
            Admitted::Sigma => "sigma",
        })
    }
}

/// A metric that drifted but was admitted by a tolerance rule: the
/// gate still passes, but the report records which rule forgave what.
#[derive(Debug, Clone, PartialEq)]
pub struct NearMiss {
    /// The cell's fingerprint.
    pub fingerprint: String,
    /// Scenario id.
    pub scenario: String,
    /// Canonical parameter key.
    pub params_key: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub before: f64,
    /// Compared value.
    pub after: f64,
    /// The rule that admitted the drift.
    pub admitted: Admitted,
}

/// The full cell-by-cell comparison, in fingerprint order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Every differing cell.
    pub deltas: Vec<CellDelta>,
    /// Cells present in both stores with all metrics within tolerance.
    pub unchanged: usize,
    /// Metrics that drifted but were admitted by a non-exact tolerance
    /// rule, in the same canonical fingerprint order as `deltas`.
    pub near_misses: Vec<NearMiss>,
}

impl DiffReport {
    /// True if the stores are equivalent under the tolerances.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Count of one delta kind.
    fn count(&self, pred: impl Fn(&DeltaKind) -> bool) -> usize {
        self.deltas.iter().filter(|d| pred(&d.kind)).count()
    }

    /// Cells only in the compared store.
    pub fn added(&self) -> usize {
        self.count(|k| matches!(k, DeltaKind::Added))
    }

    /// Cells only in the baseline store.
    pub fn removed(&self) -> usize {
        self.count(|k| matches!(k, DeltaKind::Removed))
    }

    /// Cells whose metrics moved beyond tolerance.
    pub fn changed(&self) -> usize {
        self.count(|k| matches!(k, DeltaKind::Changed(_)))
    }
}

/// Diffs `b` (compared) against `a` (baseline) under `tol`.
pub fn diff_stores(a: &ResultStore, b: &ResultStore, tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    for (fp, cell) in a.iter() {
        match b.get_by_fingerprint(fp) {
            None => report.deltas.push(CellDelta {
                fingerprint: fp.to_string(),
                scenario: cell.scenario.clone(),
                params_key: cell.params_key.clone(),
                kind: DeltaKind::Removed,
            }),
            Some(other) => {
                let (changes, admitted) = diff_metrics(cell, other, tol);
                for (metric, before, after, rule) in admitted {
                    report.near_misses.push(NearMiss {
                        fingerprint: fp.to_string(),
                        scenario: cell.scenario.clone(),
                        params_key: cell.params_key.clone(),
                        metric,
                        before,
                        after,
                        admitted: rule,
                    });
                }
                if changes.is_empty() {
                    report.unchanged += 1;
                } else {
                    report.deltas.push(CellDelta {
                        fingerprint: fp.to_string(),
                        scenario: cell.scenario.clone(),
                        params_key: cell.params_key.clone(),
                        kind: DeltaKind::Changed(changes),
                    });
                }
            }
        }
    }
    for (fp, cell) in b.iter() {
        if a.get_by_fingerprint(fp).is_none() {
            report.deltas.push(CellDelta {
                fingerprint: fp.to_string(),
                scenario: cell.scenario.clone(),
                params_key: cell.params_key.clone(),
                kind: DeltaKind::Added,
            });
        }
    }
    // Both passes emit in each store's fingerprint order; interleave
    // into one canonical order so reports are deterministic.
    report
        .deltas
        .sort_by(|x, y| x.fingerprint.cmp(&y.fingerprint));
    report
}

/// The combined standard error of a drifting `<base>.mean` column,
/// from both fold cells' own recorded `.std`/`.n` siblings — the scale
/// the `--sigmas` rule measures the drift against. `None` when either
/// side is not a fold cell or lacks the sibling columns.
fn standard_error(
    metric: &str,
    a: &crate::store::StoredCell,
    b: &crate::store::StoredCell,
) -> Option<f64> {
    if !a.fold || !b.fold {
        return None;
    }
    let base = metric.strip_suffix(".mean")?;
    let sibling = |cell: &crate::store::StoredCell, suffix: &str| {
        cell.result.metric(&format!("{base}.{suffix}"))
    };
    let (std_a, n_a) = (sibling(a, "std")?, sibling(a, "n")?);
    let (std_b, n_b) = (sibling(b, "std")?, sibling(b, "n")?);
    if n_a < 1.0 || n_b < 1.0 {
        return None;
    }
    Some((std_a * std_a / n_a + std_b * std_b / n_b).sqrt())
}

/// Metric equivalence under an absolute tolerance, made NaN/∞-aware:
/// two NaNs are *equivalent* (a scenario that deterministically
/// produces NaN has not drifted — byte-identical stores must diff
/// empty), equal infinities likewise (their difference is NaN, which
/// would otherwise read as drift), and any *other* pairing involving a
/// non-finite value is always a difference — no tolerance, however
/// large (`--tol m=inf` parses), can absorb NaN-vs-number or
/// +∞-vs-−∞; they are reported by name (`NaN`, `inf`) in the summary.
fn within_tolerance(before: f64, after: f64, tol: f64) -> bool {
    if before.is_nan() && after.is_nan() {
        return true;
    }
    if !before.is_finite() || !after.is_finite() {
        return before == after; // inf == inf, -inf == -inf
    }
    (after - before).abs() <= tol
}

type AdmittedMetric = (String, f64, f64, Admitted);

fn diff_metrics(
    a: &crate::store::StoredCell,
    b: &crate::store::StoredCell,
    tol: &Tolerances,
) -> (Vec<MetricDelta>, Vec<AdmittedMetric>) {
    let mut deltas = Vec::new();
    let mut admitted = Vec::new();
    // a's metrics in declaration order, then metrics only b has.
    for (metric, before) in &a.result.metrics {
        let before = *before;
        let Some(after) = b.result.metric(metric) else {
            deltas.push(MetricDelta {
                metric: metric.clone(),
                before: Some(before),
                after: None,
            });
            continue;
        };
        // Exact equality (NaN == NaN, inf == inf) is no drift at all;
        // each admission rule below forgives a real drift and is
        // recorded as a near miss. Non-finite mismatches fall through
        // every rule: no tolerance absorbs NaN-vs-number or +∞-vs-−∞.
        if within_tolerance(before, after, 0.0) {
            continue;
        }
        let rule = if within_tolerance(before, after, tol.tolerance(metric)) {
            Some(Admitted::Abs)
        } else if within_tolerance(before, after, tol.rel * before.abs().max(after.abs())) {
            Some(Admitted::Rel)
        } else {
            tol.sigmas
                .and_then(|s| {
                    standard_error(metric, a, b)
                        .filter(|se| within_tolerance(before, after, s * se))
                })
                .map(|_| Admitted::Sigma)
        };
        match rule {
            Some(rule) => admitted.push((metric.clone(), before, after, rule)),
            None => deltas.push(MetricDelta {
                metric: metric.clone(),
                before: Some(before),
                after: Some(after),
            }),
        }
    }
    for (metric, after) in &b.result.metrics {
        if a.result.metric(metric).is_none() {
            deltas.push(MetricDelta {
                metric: metric.clone(),
                before: None,
                after: Some(*after),
            });
        }
    }
    (deltas, admitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CellResult, Params};

    fn params(n: u64) -> Params {
        Params::new(vec![("n".into(), n.to_string())])
    }

    fn store_with(cells: &[(u64, &[(&str, f64)])]) -> ResultStore {
        let mut s = ResultStore::new();
        for &(n, metrics) in cells {
            s.insert("s", 1, &params(n), n, CellResult::new(metrics.to_vec()));
        }
        s
    }

    #[test]
    fn identical_stores_diff_empty() {
        let a = store_with(&[(1, &[("m", 1.0)]), (2, &[("m", 2.0)])]);
        let report = diff_stores(&a, &a.clone(), &Tolerances::exact());
        assert!(report.is_empty());
        assert_eq!(report.unchanged, 2);
    }

    #[test]
    fn added_removed_and_changed_are_distinguished() {
        let a = store_with(&[(1, &[("m", 1.0)]), (2, &[("m", 2.0)])]);
        let b = store_with(&[(2, &[("m", 2.5)]), (3, &[("m", 3.0)])]);
        let report = diff_stores(&a, &b, &Tolerances::exact());
        assert_eq!(report.removed(), 1);
        assert_eq!(report.added(), 1);
        assert_eq!(report.changed(), 1);
        assert_eq!(report.unchanged, 0);
        let changed = report
            .deltas
            .iter()
            .find_map(|d| match &d.kind {
                DeltaKind::Changed(m) => Some(m),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            changed,
            &vec![MetricDelta {
                metric: "m".into(),
                before: Some(2.0),
                after: Some(2.5),
            }]
        );
    }

    #[test]
    fn tolerances_absorb_small_moves() {
        let a = store_with(&[(1, &[("m", 1.0), ("k", 5.0)])]);
        let b = store_with(&[(1, &[("m", 1.05), ("k", 5.4)])]);
        assert_eq!(diff_stores(&a, &b, &Tolerances::exact()).changed(), 1);
        let tol = Tolerances::exact().with("m", 0.1).with("k", 0.5);
        assert!(diff_stores(&a, &b, &tol).is_empty());
        let default_tol = Tolerances::exact().with_default(0.5);
        assert!(diff_stores(&a, &b, &default_tol).is_empty());
        // Per-metric entries override the default.
        let tight = Tolerances::exact().with_default(0.5).with("k", 0.01);
        assert_eq!(diff_stores(&a, &b, &tight).changed(), 1);
    }

    #[test]
    fn metric_appearing_or_vanishing_is_a_change() {
        let a = store_with(&[(1, &[("m", 1.0)])]);
        let b = store_with(&[(1, &[("m", 1.0), ("extra", 9.0)])]);
        let report = diff_stores(&a, &b, &Tolerances::exact().with_default(1e9));
        assert_eq!(report.changed(), 1, "tolerance cannot excuse absence");
        assert_eq!(diff_stores(&b, &a, &Tolerances::exact()).changed(), 1);
    }

    #[test]
    fn nan_metrics_in_both_stores_are_not_drift() {
        // A deterministic NaN (or ∞) is the same result on both sides;
        // byte-identical stores must diff empty.
        let a = store_with(&[(1, &[("m", f64::NAN), ("k", f64::INFINITY)])]);
        let report = diff_stores(&a, &a.clone(), &Tolerances::exact());
        assert!(report.is_empty(), "got: {report:?}");
        assert_eq!(report.unchanged, 1);
        let neg = store_with(&[(1, &[("m", f64::NEG_INFINITY)])]);
        assert!(diff_stores(&neg, &neg.clone(), &Tolerances::exact()).is_empty());
    }

    #[test]
    fn non_finite_mismatches_are_always_reported() {
        let nan = store_with(&[(1, &[("m", f64::NAN)])]);
        let num = store_with(&[(1, &[("m", 1.0)])]);
        let inf = store_with(&[(1, &[("m", f64::INFINITY)])]);
        let ninf = store_with(&[(1, &[("m", f64::NEG_INFINITY)])]);
        // No tolerance — not even an infinite one — absorbs a
        // non-finite mismatch.
        let huge = Tolerances::exact().with_default(f64::INFINITY);
        for (x, y) in [(&nan, &num), (&num, &nan), (&inf, &ninf), (&inf, &num)] {
            assert_eq!(diff_stores(x, y, &Tolerances::exact()).changed(), 1);
            assert_eq!(diff_stores(x, y, &huge).changed(), 1);
        }
        // The summary names the value instead of hiding it.
        let s = crate::report::diff_summary(&diff_stores(&nan, &num, &Tolerances::exact()));
        assert!(s.contains("NaN -> 1"), "got: {s}");
        let s = crate::report::diff_summary(&diff_stores(&inf, &ninf, &Tolerances::exact()));
        assert!(s.contains("inf -> -inf"), "got: {s}");
    }

    #[test]
    fn parse_accepts_good_and_rejects_bad() {
        let tol = Tolerances::parse(&["m=0.5".into(), "k=1e-9".into()]).unwrap();
        assert_eq!(tol.tolerance("m"), 0.5);
        assert_eq!(tol.tolerance("k"), 1e-9);
        assert_eq!(tol.tolerance("other"), 0.0);
        assert!(Tolerances::parse(&["m".into()]).is_err());
        assert!(Tolerances::parse(&["m=notanumber".into()]).is_err());
        assert!(Tolerances::parse(&["m=-1".into()]).is_err());
        assert!(Tolerances::parse(&["=1".into()]).is_err());
    }

    fn fold_store_with(cells: &[(u64, &[(&str, f64)])]) -> ResultStore {
        use crate::store::{fingerprint, StoredCell};
        let mut s = ResultStore::new();
        for &(n, metrics) in cells {
            let p = params(n);
            s.insert_cell(
                fingerprint("s", 1, &p, n),
                StoredCell {
                    scenario: "s".to_string(),
                    version: 1,
                    params_key: p.key(),
                    seed: n,
                    fold: true,
                    result: CellResult::new(metrics.to_vec()),
                },
            );
        }
        s
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        let a = store_with(&[(1, &[("m", 1000.0), ("k", 1.0)])]);
        let b = store_with(&[(1, &[("m", 1009.0), ("k", 1.009)])]);
        // 1% relative slack admits both drifts; absolute 0 admits none.
        assert_eq!(diff_stores(&a, &b, &Tolerances::exact()).changed(), 1);
        let rel = Tolerances::exact().with_rel(0.01);
        let report = diff_stores(&a, &b, &rel);
        assert!(report.is_empty(), "got: {report:?}");
        assert_eq!(report.near_misses.len(), 2);
        assert!(report
            .near_misses
            .iter()
            .all(|m| m.admitted == Admitted::Rel));
        // A 2% move escapes the 1% slack.
        let c = store_with(&[(1, &[("m", 1020.0), ("k", 1.0)])]);
        assert_eq!(diff_stores(&a, &c, &rel).changed(), 1);
    }

    #[test]
    fn sigma_tolerance_admits_statistical_noise_on_fold_means() {
        // Two fold cells whose means moved by ~1.4 standard errors:
        // std = 2, n = 16 on both sides -> se = sqrt(4/16 + 4/16) ~ 0.707.
        let a = fold_store_with(&[(1, &[("m.mean", 10.0), ("m.std", 2.0), ("m.n", 16.0)])]);
        let b = fold_store_with(&[(1, &[("m.mean", 11.0), ("m.std", 2.0), ("m.n", 16.0)])]);
        assert_eq!(diff_stores(&a, &b, &Tolerances::exact()).changed(), 1);
        let sigmas = Tolerances::exact().with_sigmas(2.0);
        let report = diff_stores(&a, &b, &sigmas);
        // .std and .n are identical; only .mean moved, within 2 sigma.
        assert!(report.is_empty(), "got: {report:?}");
        assert_eq!(report.near_misses.len(), 1);
        assert_eq!(report.near_misses[0].admitted, Admitted::Sigma);
        assert_eq!(report.near_misses[0].metric, "m.mean");
        // One sigma is too tight for a 1.4-se move.
        assert_eq!(
            diff_stores(&a, &b, &Tolerances::exact().with_sigmas(1.0)).changed(),
            1
        );
        // The summary names the admitting rule.
        let s = crate::report::diff_summary(&report);
        assert!(s.contains("admitted: sigma"), "got: {s}");
        assert!(s.contains("1 within tolerance"), "got: {s}");
    }

    #[test]
    fn sigma_tolerance_ignores_raw_cells_and_non_mean_metrics() {
        let sigmas = Tolerances::exact().with_sigmas(100.0);
        // Raw (non-fold) cells never qualify, however generous S is.
        let a = store_with(&[(1, &[("m.mean", 10.0), ("m.std", 2.0), ("m.n", 16.0)])]);
        let b = store_with(&[(1, &[("m.mean", 11.0), ("m.std", 2.0), ("m.n", 16.0)])]);
        assert_eq!(diff_stores(&a, &b, &sigmas).changed(), 1);
        // A fold cell's non-mean column is not sigma-eligible either.
        let a = fold_store_with(&[(1, &[("m.mean", 10.0), ("m.std", 2.0), ("m.n", 16.0)])]);
        let b = fold_store_with(&[(1, &[("m.mean", 10.0), ("m.std", 2.5), ("m.n", 16.0)])]);
        assert_eq!(diff_stores(&a, &b, &sigmas).changed(), 1);
    }

    #[test]
    fn admission_chain_prefers_abs_then_rel_then_sigma() {
        let a = fold_store_with(&[(1, &[("m.mean", 10.0), ("m.std", 2.0), ("m.n", 16.0)])]);
        let b = fold_store_with(&[(1, &[("m.mean", 10.5), ("m.std", 2.0), ("m.n", 16.0)])]);
        let all = Tolerances::exact()
            .with("m.mean", 1.0)
            .with_rel(0.5)
            .with_sigmas(3.0);
        let report = diff_stores(&a, &b, &all);
        assert!(report.is_empty());
        assert_eq!(report.near_misses[0].admitted, Admitted::Abs);
        let rel_then_sigma = Tolerances::exact().with_rel(0.5).with_sigmas(3.0);
        let report = diff_stores(&a, &b, &rel_then_sigma);
        assert_eq!(report.near_misses[0].admitted, Admitted::Rel);
    }
}
