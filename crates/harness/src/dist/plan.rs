//! The shard planner and campaign manifest.
//!
//! [`plan`] deterministically partitions the scenario matrices into N
//! disjoint shards by cell fingerprint and captures everything a
//! worker needs — scenario ids, filter clauses, campaign seed, shard
//! count, schema version — in a [`Manifest`]. The manifest is small on
//! purpose: workers re-expand the matrix themselves, so shard `i/N` can
//! be claimed by any process that holds the manifest and the same
//! registry, with no coordinator in the loop. The planned cell count
//! *and a digest of every planned fingerprint* are recorded so registry
//! drift (a scenario whose matrix, version or axis values changed since
//! planning) is detected instead of silently producing a partial or
//! mispartitioned merge.
//!
//! Planning is *streaming*: cells are decoded one at a time from the
//! lazy [`CellIter`](crate::matrix::CellIter) and folded into counts
//! and digests — a plan over a multi-million-cell gen sweep never
//! materializes a cell list. The manifest also carries per-scenario
//! *cost weights* (optionally calibrated from a committed baseline
//! store) which the work-stealing layer uses to size its initial
//! leases; weights are advisory and never affect results.

use crate::exec::{cell_seed, select_scenarios, shard_of, validate_filter};
use crate::json::Json;
use crate::matrix::{CellIter, Filter};
use crate::registry::Registry;
use crate::scenario::{Params, ScenarioError, ScenarioSpec};
use crate::store::{fingerprint_with_content, ResultStore};
use std::path::Path;

/// Bump when the manifest layout or the shard assignment rule changes;
/// workers then refuse stale manifests instead of mispartitioning.
/// Version history: 1 — global cell count + fingerprint digest;
/// 2 — per-scenario counts/digests (drift errors name the drifted
/// scenarios) and the generated-program corpus identity;
/// 3 — per-scenario cost weights (the work-stealing layer's initial
/// lease balance);
/// 4 — the replicate multiplier (`--replicates N` enters the planned
/// index space, so every worker expands the same replicated matrix).
pub const MANIFEST_SCHEMA: u32 = 4;

/// One scenario's slice of the plan: enough to attribute drift to a
/// scenario by name instead of reporting bare campaign-level numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    /// Scenario id.
    pub id: String,
    /// Matched cells of this scenario at plan time.
    pub cells: usize,
    /// Digest of this scenario's planned fingerprints, in plan order.
    pub digest: String,
    /// Relative per-cell cost weight (1.0 = baseline). Advisory: sizes
    /// the work-stealing chunks and initial leases, never results.
    pub weight: f64,
}

/// The generated-program corpus the campaign was planned over, when any
/// selected scenario sweeps one. Workers rebuild the exact registry
/// from this and verify the digest, so a codegen change between plan
/// and shard time surfaces as *corpus drift* instead of a silently
/// different program population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusPlan {
    /// Kernels per shape.
    pub size: u32,
    /// The corpus seed.
    pub seed: u64,
    /// The corpus population digest at plan time.
    pub digest: String,
}

/// Everything a worker needs to independently claim one shard of a
/// campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The campaign seed every cell seed derives from.
    pub seed: u64,
    /// Number of shards the cell set is partitioned into.
    pub shards: u32,
    /// Replicates per base cell (1 = the unreplicated matrix). Above
    /// one, every scenario matrix is multiplied by the fastest-varying
    /// [`crate::matrix::REP_AXIS`] and the planned counts, digests and
    /// shard assignments all range over the replicate cells.
    pub replicates: u32,
    /// Resolved scenario ids, in campaign (registration) order.
    pub scenarios: Vec<String>,
    /// Raw `axis=value` filter clauses, as given at plan time.
    pub filter: Vec<String>,
    /// Total matched cells at plan time (drift check).
    pub cells: usize,
    /// Digest of every planned cell fingerprint, in plan order. Catches
    /// count-preserving registry drift (a version bump or axis-value
    /// rename leaves the cell count intact but changes every
    /// fingerprint — and therefore the partition).
    pub digest: String,
    /// Per-scenario counts, digests and cost weights, in campaign
    /// order; lets drift errors name the scenarios that moved.
    pub per_scenario: Vec<ScenarioPlan>,
    /// The generated-program corpus identity, when the planning
    /// registry carried one and a selected scenario sweeps it.
    pub corpus: Option<CorpusPlan>,
}

/// An incremental, order-sensitive digest over planned fingerprints —
/// the streaming replacement for hashing a materialized cell list.
#[derive(Debug, Clone)]
pub struct FingerprintDigest {
    h: u64,
}

impl FingerprintDigest {
    /// An empty digest.
    pub fn new() -> FingerprintDigest {
        FingerprintDigest {
            h: crate::store::FNV_OFFSET,
        }
    }

    /// Folds one fingerprint in.
    pub fn update(&mut self, fp: &str) {
        self.h = crate::store::fnv1a(fp.as_bytes(), self.h);
        self.h = crate::store::fnv1a(&[0xff], self.h);
    }

    /// The digest so far.
    pub fn finish(&self) -> String {
        format!("{:016x}", self.h)
    }
}

impl Default for FingerprintDigest {
    fn default() -> Self {
        FingerprintDigest::new()
    }
}

/// Hashes the planned fingerprints (order-sensitive) into the
/// manifest's drift digest.
pub fn digest_of(cells: &[PlannedCell]) -> String {
    let mut digest = FingerprintDigest::new();
    for cell in cells {
        digest.update(&cell.fingerprint);
    }
    digest.finish()
}

/// One cell of the planned partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedCell {
    /// Scenario id.
    pub scenario: String,
    /// Cell coordinates.
    pub params: Params,
    /// The derived cell seed.
    pub seed: u64,
    /// The cell's store fingerprint.
    pub fingerprint: String,
    /// The shard that owns the cell (static partition).
    pub shard: u32,
    /// Position in the campaign's global lazy index space (scenarios
    /// in campaign order, matrices row-major) — the coordinate the
    /// work-stealing chunks lease by.
    pub global: usize,
}

impl Manifest {
    /// Parses the stored filter clauses.
    pub fn parsed_filter(&self) -> Result<Filter, ScenarioError> {
        Filter::parse(&self.filter).map_err(ScenarioError::Dist)
    }

    /// This scenario's per-cell cost weight (1.0 when the manifest does
    /// not name it).
    pub fn weight_of(&self, scenario_id: &str) -> f64 {
        self.per_scenario
            .iter()
            .find(|s| s.id == scenario_id)
            .map_or(1.0, |s| s.weight)
    }

    /// Serializes deterministically (equal manifests are byte-equal).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("schema".into(), Json::Num(MANIFEST_SCHEMA as f64)),
            // Decimal string: u64 seeds exceed f64's exact range.
            ("seed".into(), Json::str(self.seed.to_string())),
            ("shards".into(), Json::Num(f64::from(self.shards))),
            ("replicates".into(), Json::Num(f64::from(self.replicates))),
            ("cells".into(), Json::Num(self.cells as f64)),
            ("digest".into(), Json::str(&self.digest)),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(Json::str).collect()),
            ),
            (
                "filter".into(),
                Json::Arr(self.filter.iter().map(Json::str).collect()),
            ),
            (
                "per_scenario".into(),
                Json::Arr(
                    self.per_scenario
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("id".into(), Json::str(&s.id)),
                                ("cells".into(), Json::Num(s.cells as f64)),
                                ("digest".into(), Json::str(&s.digest)),
                                ("weight".into(), Json::Num(s.weight)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(corpus) = &self.corpus {
            members.push((
                "corpus".into(),
                Json::Obj(vec![
                    ("size".into(), Json::Num(f64::from(corpus.size))),
                    ("seed".into(), Json::str(corpus.seed.to_string())),
                    ("digest".into(), Json::str(&corpus.digest)),
                ]),
            ));
        }
        Json::Obj(members)
    }

    /// Deserializes a manifest; unlike the result store, a schema
    /// mismatch is an error — a worker must never run a partition rule
    /// it does not implement.
    pub fn from_json(doc: &Json) -> Result<Manifest, ScenarioError> {
        let bad = |what: &str| ScenarioError::Dist(format!("manifest: bad {what}"));
        // Exact non-negative integer within [0, max]: out-of-range or
        // fractional values error instead of saturating — a corrupted
        // "size": 5e9 must exit cleanly, not materialize u32::MAX
        // kernels in the worker.
        let exact = |v: f64, max: f64| (v.fract() == 0.0 && (0.0..=max).contains(&v)).then_some(v);
        let schema = doc.get("schema").and_then(Json::as_f64).unwrap_or(0.0) as u32;
        if schema != MANIFEST_SCHEMA {
            return Err(ScenarioError::Dist(format!(
                "manifest schema {schema} != supported {MANIFEST_SCHEMA}"
            )));
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("seed"))?;
        let shards = doc
            .get("shards")
            .and_then(Json::as_f64)
            .and_then(|s| exact(s, u32::MAX as f64))
            .filter(|s| *s >= 1.0)
            .ok_or_else(|| bad("shards"))? as u32;
        let replicates = doc
            .get("replicates")
            .and_then(Json::as_f64)
            .and_then(|r| exact(r, u32::MAX as f64))
            .filter(|r| *r >= 1.0)
            .ok_or_else(|| bad("replicates"))? as u32;
        let cells = doc
            .get("cells")
            .and_then(Json::as_f64)
            .and_then(|c| exact(c, u32::MAX as f64))
            .ok_or_else(|| bad("cells"))? as usize;
        let strings = |key: &'static str| -> Result<Vec<String>, ScenarioError> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(key))?
                .iter()
                .map(|v| v.as_str().map(str::to_string).ok_or_else(|| bad(key)))
                .collect()
        };
        let digest = doc
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("digest"))?
            .to_string();
        let per_scenario = doc
            .get("per_scenario")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("per_scenario"))?
            .iter()
            .map(|entry| {
                Ok(ScenarioPlan {
                    id: entry
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("per_scenario id"))?
                        .to_string(),
                    cells: entry
                        .get("cells")
                        .and_then(Json::as_f64)
                        .and_then(|c| exact(c, u32::MAX as f64))
                        .ok_or_else(|| bad("per_scenario cells"))?
                        as usize,
                    digest: entry
                        .get("digest")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("per_scenario digest"))?
                        .to_string(),
                    weight: entry
                        .get("weight")
                        .and_then(Json::as_f64)
                        .filter(|w| w.is_finite() && *w > 0.0)
                        .ok_or_else(|| bad("per_scenario weight"))?,
                })
            })
            .collect::<Result<Vec<_>, ScenarioError>>()?;
        let corpus = match doc.get("corpus") {
            None => None,
            Some(entry) => Some(CorpusPlan {
                size: entry
                    .get("size")
                    .and_then(Json::as_f64)
                    .and_then(|s| exact(s, u32::MAX as f64))
                    .ok_or_else(|| bad("corpus size"))? as u32,
                seed: entry
                    .get("seed")
                    .and_then(Json::as_str)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("corpus seed"))?,
                digest: entry
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("corpus digest"))?
                    .to_string(),
            }),
        };
        Ok(Manifest {
            seed,
            shards,
            replicates,
            scenarios: strings("scenarios")?,
            filter: strings("filter")?,
            cells,
            digest,
            per_scenario,
            corpus,
        })
    }

    /// Loads a manifest from disk.
    pub fn load(path: &Path) -> Result<Manifest, ScenarioError> {
        let doc = Json::parse_file(path).map_err(ScenarioError::Dist)?;
        Manifest::from_json(&doc)
    }

    /// Writes the manifest to disk (atomically, like the store).
    pub fn save(&self, path: &Path) -> Result<(), ScenarioError> {
        crate::store::write_atomic(path, self.to_json().pretty().as_bytes())
    }
}

/// Streams every planned cell of the resolved specs in the executor's
/// deterministic order — scenario by scenario, matrices decoded lazily
/// through [`CellIter`] — invoking `visit` per matching cell. This is
/// the one enumeration loop every planning-side consumer (manifest
/// digests, drift checks, coverage verification, chunk maps) folds
/// over; none of them ever hold a materialized cell list.
fn stream_cells(
    specs: &[ScenarioSpec],
    filter: &Filter,
    seed: u64,
    shards: u32,
    replicates: u32,
    visit: &mut dyn FnMut(PlannedCell) -> Result<(), ScenarioError>,
) -> Result<(), ScenarioError> {
    let reps = replicates.max(1);
    if reps > 1 {
        // Mirror the executor's reservation of the replicate axis: a
        // scenario declaring its own `rep` axis would make base and
        // replicate coordinates ambiguous.
        for spec in specs {
            if spec.axes.iter().any(|a| a.name == crate::matrix::REP_AXIS) {
                return Err(ScenarioError::Dist(format!(
                    "scenario `{}` declares an axis named `{}`, which is \
                     reserved for --replicates",
                    spec.id,
                    crate::matrix::REP_AXIS
                )));
            }
        }
    }
    let mut global_base = 0usize;
    for spec in specs {
        let cells = CellIter::new(&spec.axes);
        let matrix = cells.total();
        for (base_local, base_params) in cells.enumerate() {
            if !filter.matches(&base_params) {
                continue;
            }
            let base_seed = cell_seed(seed, spec.id, &base_params);
            // The replicate axis varies fastest, exactly as the
            // executor decodes it: replicate cells of one base cell
            // occupy consecutive global indices.
            for rep in 0..reps {
                let (params, cell_seed) = if reps > 1 {
                    (
                        crate::matrix::with_rep(&base_params, rep),
                        crate::expect::replicate_seed(base_seed, rep),
                    )
                } else {
                    (base_params.clone(), base_seed)
                };
                let fp = fingerprint_with_content(
                    spec.id,
                    spec.version,
                    spec.content_digest.as_deref(),
                    &params,
                    cell_seed,
                );
                visit(PlannedCell {
                    scenario: spec.id.to_string(),
                    params,
                    seed: cell_seed,
                    shard: shard_of(&fp, shards)?,
                    fingerprint: fp,
                    global: global_base + base_local * reps as usize + rep as usize,
                })?;
            }
        }
        global_base += matrix * reps as usize;
    }
    Ok(())
}

/// Streams the manifest's planned cells (the worker-side view of
/// [`stream_cells`]: selection, filter, seed and shard count all come
/// from the manifest).
pub fn visit_planned_cells(
    registry: &Registry,
    manifest: &Manifest,
    visit: &mut dyn FnMut(PlannedCell) -> Result<(), ScenarioError>,
) -> Result<(), ScenarioError> {
    let filter = manifest.parsed_filter()?;
    let scenarios = select_scenarios(registry, &manifest.scenarios)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    validate_filter(&specs, &filter)?;
    stream_cells(
        &specs,
        &filter,
        manifest.seed,
        manifest.shards,
        manifest.replicates,
        visit,
    )
}

/// Materializes the manifest's planned cells (a collecting wrapper over
/// [`visit_planned_cells`] for callers that genuinely need the list —
/// tests, mostly; production paths stream).
pub fn planned_cells(
    registry: &Registry,
    manifest: &Manifest,
) -> Result<Vec<PlannedCell>, ScenarioError> {
    let mut cells = Vec::new();
    visit_planned_cells(registry, manifest, &mut |cell| {
        cells.push(cell);
        Ok(())
    })?;
    Ok(cells)
}

/// Derives a scenario's per-cell cost weight from a prior store: the
/// mean magnitude of its cells' metrics, a crude but dependency-free
/// work proxy (bigger simulated quantities — cycles, task times, bound
/// widths — correlate with longer cell evaluations). Returns `None`
/// when the store holds no cells of the scenario. Weights are advisory:
/// they shape work-stealing chunk sizes and the initial lease balance,
/// and can never affect campaign results.
pub fn scenario_cost_proxy(baseline: &ResultStore, scenario_id: &str) -> Option<f64> {
    let mut cells = 0usize;
    let mut magnitude = 0.0f64;
    for (_, cell) in baseline.iter() {
        if cell.scenario == scenario_id {
            cells += 1;
            magnitude += cell
                .result
                .metrics
                .iter()
                .map(|(_, v)| v.abs())
                .sum::<f64>();
        }
    }
    (cells > 0).then(|| magnitude / cells as f64)
}

/// Where a plan's per-scenario cost weights came from — reported by the
/// CLI so an operator can tell a wall-clock-calibrated plan from the
/// proxy fallback at a glance. The manifest itself is agnostic: weights
/// are plain numbers whatever their source (schema unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightSource {
    /// No baseline: every scenario weighs 1.0.
    Unit,
    /// Mean metric magnitude per cell — the dependency-free proxy.
    MetricProxy,
    /// Measured mean wall-clock duration per cell, from the baseline
    /// store's telemetry sidecar.
    WallClock,
}

/// Per-scenario cost weights from *measured* wall-clock telemetry: each
/// covered scenario's weight is its mean recorded cell duration,
/// normalized so the cheapest covered scenario weighs 1.0; scenarios
/// the sidecar never timed weigh 1.0. Returns `None` when the telemetry
/// covers none of the selection — the caller then falls back to the
/// metric-magnitude proxy ([`calibrate_weights`]).
pub fn calibrate_weights_wall(
    telemetry: &crate::telemetry::Telemetry,
    scenario_ids: &[String],
) -> Option<Vec<f64>> {
    let means: Vec<Option<f64>> = scenario_ids
        .iter()
        .map(|id| telemetry.scenario_wall_mean_ns(id).filter(|m| *m > 0.0))
        .collect();
    let floor = means
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    floor.is_finite().then(|| {
        means
            .into_iter()
            .map(|m| m.map_or(1.0, |m| m / floor))
            .collect()
    })
}

/// Per-scenario cost weights for a selection, calibrated from a
/// baseline store and normalized so the cheapest calibrated scenario
/// weighs 1.0; scenarios absent from the baseline weigh 1.0.
pub fn calibrate_weights(baseline: &ResultStore, scenario_ids: &[String]) -> Vec<f64> {
    let proxies: Vec<Option<f64>> = scenario_ids
        .iter()
        .map(|id| scenario_cost_proxy(baseline, id).filter(|m| *m > 0.0))
        .collect();
    let floor = proxies
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    proxies
        .into_iter()
        .map(|p| match p {
            Some(m) if floor.is_finite() => m / floor,
            _ => 1.0,
        })
        .collect()
}

/// Plans a campaign into `shards` disjoint shards: validates selection,
/// filter and shard count exactly like a run would, then records the
/// resolved scenario ids, matched cell count and fingerprint digest in
/// a [`Manifest`]. Unit cost weights; see [`plan_calibrated`].
pub fn plan(
    registry: &Registry,
    select: &[String],
    filter_clauses: &[String],
    seed: u64,
    shards: u32,
) -> Result<Manifest, ScenarioError> {
    plan_calibrated(registry, select, filter_clauses, seed, shards, None).map(|(m, _)| m)
}

/// [`plan`] with optional cost calibration from a baseline store, also
/// returning the per-shard planned cell counts (the partition balance)
/// — everything computed in one streaming pass, no materialized cells.
pub fn plan_calibrated(
    registry: &Registry,
    select: &[String],
    filter_clauses: &[String],
    seed: u64,
    shards: u32,
    baseline: Option<&ResultStore>,
) -> Result<(Manifest, Vec<usize>), ScenarioError> {
    plan_calibrated_with(
        registry,
        select,
        filter_clauses,
        seed,
        shards,
        1,
        baseline,
        None,
    )
    .map(|(m, counts, _)| (m, counts))
}

/// [`plan_calibrated`] with the measured-duration upgrade: when the
/// baseline store's telemetry sidecar times at least one selected
/// scenario, the weights come from *wall-clock means* instead of the
/// metric-magnitude proxy; otherwise the proxy (or unit weights with no
/// baseline at all). Also reports which source won.
#[allow(clippy::too_many_arguments)]
pub fn plan_calibrated_with(
    registry: &Registry,
    select: &[String],
    filter_clauses: &[String],
    seed: u64,
    shards: u32,
    replicates: u32,
    baseline: Option<&ResultStore>,
    telemetry: Option<&crate::telemetry::Telemetry>,
) -> Result<(Manifest, Vec<usize>, WeightSource), ScenarioError> {
    if shards == 0 {
        return Err(ScenarioError::Dist("shard count must be >= 1".into()));
    }
    if replicates == 0 {
        return Err(ScenarioError::Dist("replicates must be >= 1".into()));
    }
    let filter = Filter::parse(filter_clauses).map_err(ScenarioError::Dist)?;
    let scenarios = select_scenarios(registry, select)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    validate_filter(&specs, &filter)?;
    // Record the corpus identity when the planning registry carries one
    // and a selected scenario actually sweeps it.
    let corpus = registry.gen_options().and_then(|options| {
        specs
            .iter()
            .find_map(|s| s.content_digest.clone())
            .map(|digest| CorpusPlan {
                size: options.corpus_size,
                seed: options.corpus_seed,
                digest,
            })
    });
    let ids: Vec<String> = specs.iter().map(|s| s.id.to_string()).collect();
    let (weights, source) = match baseline {
        Some(store) => match telemetry.and_then(|t| calibrate_weights_wall(t, &ids)) {
            Some(w) => (w, WeightSource::WallClock),
            None => (calibrate_weights(store, &ids), WeightSource::MetricProxy),
        },
        None => (vec![1.0; ids.len()], WeightSource::Unit),
    };

    // One streaming pass folds every planned fingerprint into the
    // global digest, the per-scenario digests and the shard balance.
    let mut global = FingerprintDigest::new();
    let mut cells = 0usize;
    let mut per: Vec<(usize, FingerprintDigest)> =
        ids.iter().map(|_| (0, FingerprintDigest::new())).collect();
    let mut shard_counts = vec![0usize; shards as usize];
    let mut scenario_index = 0usize;
    stream_cells(&specs, &filter, seed, shards, replicates, &mut |cell| {
        while ids[scenario_index] != cell.scenario {
            scenario_index += 1;
        }
        global.update(&cell.fingerprint);
        cells += 1;
        per[scenario_index].0 += 1;
        per[scenario_index].1.update(&cell.fingerprint);
        shard_counts[cell.shard as usize] += 1;
        Ok(())
    })?;

    let manifest = Manifest {
        seed,
        shards,
        replicates,
        scenarios: ids.clone(),
        filter: filter_clauses.to_vec(),
        cells,
        digest: global.finish(),
        per_scenario: ids
            .into_iter()
            .zip(per)
            .zip(weights)
            .map(|((id, (count, digest)), weight)| ScenarioPlan {
                id,
                cells: count,
                digest: digest.finish(),
                weight,
            })
            .collect(),
        corpus,
    };
    Ok((manifest, shard_counts, source))
}

/// [`plan`], also returning the materialized planned cells — kept for
/// tests and small campaigns; the CLI and workers stream instead.
pub fn plan_with_cells(
    registry: &Registry,
    select: &[String],
    filter_clauses: &[String],
    seed: u64,
    shards: u32,
) -> Result<(Manifest, Vec<PlannedCell>), ScenarioError> {
    let manifest = plan(registry, select, filter_clauses, seed, shards)?;
    let cells = planned_cells(registry, &manifest)?;
    Ok((manifest, cells))
}

/// Re-streams the manifest's campaign and errors if the registry has
/// drifted since plan time: a different cell count (matrix grew or
/// shrank), a different fingerprint digest (version bump, axis-value
/// rename — anything that silently changes the partition), or a
/// generated corpus that no longer digests to the planned population.
/// Either way, shard unions would no longer equal the planned campaign,
/// so re-plan. Drift errors *name the drifted scenarios* via the
/// manifest's per-scenario records. Runs in constant memory.
pub fn check_drift(registry: &Registry, manifest: &Manifest) -> Result<(), ScenarioError> {
    check_drift_observing(registry, manifest, &mut |_| {})
}

/// [`check_drift`], additionally handing every streamed cell to
/// `observe` during the same single pass — consumers that need both the
/// drift check and the cell stream (merge's coverage verification)
/// avoid enumerating and fingerprinting the campaign twice. `observe`
/// runs before the drift verdict is known, so it must only *collect*;
/// drift errors take precedence over anything it gathers.
pub fn check_drift_observing(
    registry: &Registry,
    manifest: &Manifest,
    observe: &mut dyn FnMut(&PlannedCell),
) -> Result<(), ScenarioError> {
    if let Some(corpus) = &manifest.corpus {
        let current = registry
            .specs()
            .iter()
            .find_map(|s| s.content_digest.clone());
        if current.as_deref() != Some(corpus.digest.as_str()) {
            return Err(ScenarioError::Dist(format!(
                "corpus drift: manifest plans corpus {} (seed {}, {} kernels/shape) but the \
                 registry's corpus digests to {} — codegen or corpus options changed; re-plan",
                corpus.digest,
                corpus.seed,
                corpus.size,
                current.as_deref().unwrap_or("<none>")
            )));
        }
    }
    let mut cells = 0usize;
    let mut global = FingerprintDigest::new();
    let mut per: Vec<(usize, FingerprintDigest)> = manifest
        .scenarios
        .iter()
        .map(|_| (0, FingerprintDigest::new()))
        .collect();
    let mut scenario_index = 0usize;
    visit_planned_cells(registry, manifest, &mut |cell| {
        while manifest.scenarios[scenario_index] != cell.scenario {
            scenario_index += 1;
        }
        cells += 1;
        global.update(&cell.fingerprint);
        per[scenario_index].0 += 1;
        per[scenario_index].1.update(&cell.fingerprint);
        observe(&cell);
        Ok(())
    })?;
    // Name the scenarios whose slice moved (weights are advisory and
    // deliberately not part of the drift comparison).
    let drifted: Vec<String> = manifest
        .per_scenario
        .iter()
        .zip(&per)
        .filter(|(planned, (count, digest))| {
            planned.cells != *count || planned.digest != digest.finish()
        })
        .map(|(planned, (count, digest))| {
            format!(
                "{} ({} -> {} cells, digest {} -> {})",
                planned.id,
                planned.cells,
                count,
                planned.digest,
                digest.finish()
            )
        })
        .collect();
    if !drifted.is_empty() {
        return Err(ScenarioError::Dist(format!(
            "registry drift in scenario{} {} — re-plan",
            if drifted.len() == 1 { "" } else { "s" },
            drifted.join(", ")
        )));
    }
    if cells != manifest.cells {
        return Err(ScenarioError::Dist(format!(
            "registry drift: manifest plans {} cells but the registry expands to {cells} — re-plan",
            manifest.cells
        )));
    }
    let digest = global.finish();
    if digest != manifest.digest {
        return Err(ScenarioError::Dist(format!(
            "registry drift: manifest digest {} != registry digest {digest} \
             (same cell count, different fingerprints — version bump or axis rename?) — re-plan",
            manifest.digest
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::builtin()
    }

    fn domino_select() -> Vec<String> {
        vec!["pipeline-domino".to_string(), "dram-refresh".to_string()]
    }

    #[test]
    fn plan_counts_cells_and_resolves_ids() {
        let m = plan(&registry(), &domino_select(), &[], 42, 3).unwrap();
        assert_eq!(m.shards, 3);
        assert_eq!(m.scenarios, domino_select());
        assert!(m.cells > 0);
        assert_eq!(planned_cells(&registry(), &m).unwrap().len(), m.cells);
        assert!(m.per_scenario.iter().all(|s| s.weight == 1.0));
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        let r = registry();
        assert!(matches!(
            plan(&r, &["nope".into()], &[], 0, 2),
            Err(ScenarioError::UnknownScenario(_))
        ));
        assert!(matches!(
            plan(&r, &domino_select(), &["notanaxis=1".into()], 0, 2),
            Err(ScenarioError::UnknownFilterAxis(_))
        ));
        assert!(matches!(
            plan(&r, &domino_select(), &["garbage".into()], 0, 2),
            Err(ScenarioError::Dist(_))
        ));
        assert!(matches!(
            plan(&r, &domino_select(), &[], 0, 0),
            Err(ScenarioError::Dist(_))
        ));
    }

    #[test]
    fn manifest_json_round_trips_and_rejects_other_schema() {
        let m = plan(&registry(), &domino_select(), &["n=16".into()], 7, 2).unwrap();
        let back = Manifest::from_json(&Json::parse(&m.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back, m);
        let mut doc = m.to_json();
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::Num(99.0);
        }
        assert!(matches!(
            Manifest::from_json(&doc),
            Err(ScenarioError::Dist(_))
        ));
    }

    #[test]
    fn drift_check_catches_cell_count_changes() {
        let mut m = plan(&registry(), &domino_select(), &[], 1, 2).unwrap();
        assert!(check_drift(&registry(), &m).is_ok());
        m.cells += 1;
        assert!(matches!(
            check_drift(&registry(), &m),
            Err(ScenarioError::Dist(_))
        ));
    }

    #[test]
    fn drift_check_catches_count_preserving_version_bumps() {
        use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioSpec};

        /// Fixed 2-cell matrix; only the version varies.
        struct Versioned(u32);
        impl Scenario for Versioned {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    id: "versioned",
                    version: self.0,
                    title: "v",
                    source_crate: "harness",
                    property: "p",
                    uncertainty: "u",
                    quality: "q",
                    catalog_id: None,
                    content_digest: None,
                    axes: vec![Axis::new("a", [1, 2])],
                    headline_metric: "m",
                    smaller_is_better: true,
                }
            }
            fn run(&self, _: &Params, _: u64) -> Result<CellResult, ScenarioError> {
                Ok(CellResult::new(vec![("m", 0.0)]))
            }
        }

        let reg = |version| {
            let mut r = Registry::empty();
            r.register(Box::new(Versioned(version)));
            r
        };
        let m = plan(&reg(1), &["versioned".into()], &[], 0, 2).unwrap();
        assert!(check_drift(&reg(1), &m).is_ok());
        // Same cell count under v2, but every fingerprint changed: the
        // digest must catch what the count cannot.
        let err = check_drift(&reg(2), &m).unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(ref msg) if msg.contains("digest")));
    }

    #[test]
    fn planned_cells_carry_global_lazy_indices() {
        let m = plan(&registry(), &domino_select(), &[], 3, 2).unwrap();
        let cells = planned_cells(&registry(), &m).unwrap();
        // No filter: global indices are exactly 0..n in plan order.
        let globals: Vec<usize> = cells.iter().map(|c| c.global).collect();
        assert_eq!(globals, (0..cells.len()).collect::<Vec<_>>());
        // A filter keeps indices anchored to the *unfiltered* space.
        let m = plan(&registry(), &domino_select(), &["n=16".into()], 3, 2).unwrap();
        let filtered = planned_cells(&registry(), &m).unwrap();
        let full: Vec<usize> = cells
            .iter()
            .filter(|c| filtered.iter().any(|f| f.fingerprint == c.fingerprint))
            .map(|c| c.global)
            .collect();
        assert_eq!(
            filtered.iter().map(|c| c.global).collect::<Vec<_>>(),
            full,
            "filtered cells keep their unfiltered lazy indices"
        );
    }

    #[test]
    fn calibration_normalizes_to_the_cheapest_scenario() {
        use crate::scenario::{CellResult, Params};
        let mut store = ResultStore::new();
        let p = |n: u64| Params::new(vec![("n".into(), n.to_string())]);
        store.insert("cheap", 1, &p(1), 1, CellResult::new(vec![("m", 2.0)]));
        store.insert("costly", 1, &p(1), 1, CellResult::new(vec![("m", 6.0)]));
        store.insert("costly", 1, &p(2), 2, CellResult::new(vec![("m", 10.0)]));
        let ids = vec![
            "cheap".to_string(),
            "costly".to_string(),
            "absent".to_string(),
        ];
        let w = calibrate_weights(&store, &ids);
        assert_eq!(w, vec![1.0, 4.0, 1.0]);
        // Calibration feeds the manifest through plan_calibrated.
        let registry = Registry::builtin();
        let (m, counts) = plan_calibrated(
            &registry,
            &domino_select(),
            &[],
            42,
            3,
            Some(&ResultStore::new()),
        )
        .unwrap();
        assert_eq!(counts.iter().sum::<usize>(), m.cells);
        assert!(m.per_scenario.iter().all(|s| s.weight == 1.0));
    }

    #[test]
    fn wall_clock_telemetry_outranks_the_metric_proxy() {
        use crate::telemetry::Telemetry;
        use std::time::Duration;
        let ids = vec![
            "slow".to_string(),
            "fast".to_string(),
            "untimed".to_string(),
        ];
        let mut telemetry = Telemetry::new();
        telemetry.record_fresh("aaaa", "slow", Duration::from_millis(40), 1);
        telemetry.record_fresh("bbbb", "fast", Duration::from_millis(10), 2);
        telemetry.record_hit("cccc", "untimed", 3);
        let w = calibrate_weights_wall(&telemetry, &ids).unwrap();
        assert_eq!(w, vec![4.0, 1.0, 1.0], "means normalize to the cheapest");
        // Telemetry covering nothing selected defers to the proxy.
        assert_eq!(
            calibrate_weights_wall(&telemetry, &["other".to_string()]),
            None
        );
        assert_eq!(calibrate_weights_wall(&Telemetry::new(), &ids), None);

        // Through the planner: with a sidecar, wall-clock wins over the
        // metric proxy; without one, the proxy still applies.
        use crate::scenario::{CellResult, Params};
        let registry = Registry::builtin();
        let ids = domino_select();
        let mut baseline = ResultStore::new();
        let p = |n: u64| Params::new(vec![("n".into(), n.to_string())]);
        // Proxy says scenario 0 is costlier (bigger magnitudes)...
        baseline.insert(&ids[0], 1, &p(1), 1, CellResult::new(vec![("m", 100.0)]));
        baseline.insert(&ids[1], 1, &p(1), 1, CellResult::new(vec![("m", 1.0)]));
        // ...but measured time says scenario 1 is.
        let mut telemetry = Telemetry::new();
        telemetry.record_fresh("aaaa", &ids[0], Duration::from_millis(1), 1);
        telemetry.record_fresh("bbbb", &ids[1], Duration::from_millis(9), 2);
        let (proxy, _, source) =
            plan_calibrated_with(&registry, &ids, &[], 42, 2, 1, Some(&baseline), None).unwrap();
        assert_eq!(source, WeightSource::MetricProxy);
        assert_eq!(proxy.per_scenario[0].weight, 100.0);
        let (timed, _, source) = plan_calibrated_with(
            &registry,
            &ids,
            &[],
            42,
            2,
            1,
            Some(&baseline),
            Some(&telemetry),
        )
        .unwrap();
        assert_eq!(source, WeightSource::WallClock);
        assert_eq!(timed.per_scenario[0].weight, 1.0);
        assert_eq!(timed.per_scenario[1].weight, 9.0);
        // The opposing weights reorder the work-stealing chunk map: the
        // proxy cuts scenario 0 finer (it thinks it costlier), the
        // timed plan cuts scenario 1 finer — measured time, not metric
        // magnitude, now shapes what is stealable.
        let chunks_of = |m: &Manifest, scenario: usize| {
            crate::dist::chunk_map(&registry, m)
                .unwrap()
                .iter()
                .filter(|c| c.scenario == scenario)
                .count()
        };
        assert!(
            chunks_of(&proxy, 0) > chunks_of(&timed, 0),
            "the proxy plan must cut the magnitude-heavy scenario finer"
        );
        assert!(
            chunks_of(&timed, 1) > chunks_of(&proxy, 1),
            "the timed plan must cut the measured-slow scenario finer"
        );
        let (_, _, source) =
            plan_calibrated_with(&registry, &ids, &[], 42, 2, 1, None, Some(&telemetry)).unwrap();
        assert_eq!(source, WeightSource::Unit, "telemetry alone is no baseline");
    }

    fn plan_reps(reps: u32, shards: u32, seed: u64) -> Manifest {
        plan_calibrated_with(
            &registry(),
            &domino_select(),
            &[],
            seed,
            shards,
            reps,
            None,
            None,
        )
        .unwrap()
        .0
    }

    #[test]
    fn replicated_manifest_round_trips_and_requires_the_field() {
        let m = plan_reps(16, 3, 9);
        assert_eq!(m.replicates, 16);
        let base = plan(&registry(), &domino_select(), &[], 9, 3).unwrap();
        assert_eq!(m.cells, base.cells * 16, "replicates multiply the matrix");
        let back = Manifest::from_json(&Json::parse(&m.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back, m);
        // A manifest without the field is from another schema era.
        let mut doc = m.to_json();
        if let Json::Obj(members) = &mut doc {
            members.retain(|(k, _)| k != "replicates");
        }
        assert!(matches!(
            Manifest::from_json(&doc),
            Err(ScenarioError::Dist(ref msg)) if msg.contains("replicates")
        ));
    }

    #[test]
    fn replicated_planned_cells_vary_rep_fastest_with_distinct_seeds() {
        let m = plan_reps(4, 2, 5);
        let cells = planned_cells(&registry(), &m).unwrap();
        assert_eq!(cells.len(), m.cells);
        // Global indices stay the dense 0..n of the replicated space.
        let globals: Vec<usize> = cells.iter().map(|c| c.global).collect();
        assert_eq!(globals, (0..cells.len()).collect::<Vec<_>>());
        let mut seeds = std::collections::HashSet::new();
        for group in cells.chunks_exact(4) {
            // Same base assignment across the group, rep 0..4 in order.
            let reps: Vec<String> = group
                .iter()
                .map(|c| c.params.get("rep").unwrap().to_string())
                .collect();
            assert_eq!(reps, ["0", "1", "2", "3"]);
            for cell in group {
                assert!(seeds.insert(cell.seed), "replicate seeds are distinct");
            }
        }
    }

    #[test]
    fn replicated_plan_matches_the_executor_decode() {
        use crate::exec::{run_campaign, ExecConfig};
        let m = plan_reps(3, 2, 11);
        let planned = planned_cells(&registry(), &m).unwrap();
        let mut store = ResultStore::new();
        run_campaign(
            &registry(),
            &domino_select(),
            &crate::matrix::Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 11,
                replicates: 3,
                keep_replicates: true,
            },
            &mut store,
        )
        .unwrap();
        // Every planned replicate cell is present in the executed store
        // under the identical fingerprint (plan and exec decode agree).
        for cell in &planned {
            assert!(
                store.contains(&cell.fingerprint),
                "planned cell {} missing from the executed store",
                cell.params.key()
            );
        }
    }
}
