//! The shard planner and campaign manifest.
//!
//! [`plan`] deterministically partitions the expanded scenario matrix
//! into N disjoint shards by cell fingerprint and captures everything a
//! worker needs — scenario ids, filter clauses, campaign seed, shard
//! count, schema version — in a [`Manifest`]. The manifest is small on
//! purpose: workers re-expand the matrix themselves, so shard `i/N` can
//! be claimed by any process that holds the manifest and the same
//! registry, with no coordinator in the loop. The planned cell count
//! *and a digest of every planned fingerprint* are recorded so registry
//! drift (a scenario whose matrix, version or axis values changed since
//! planning) is detected instead of silently producing a partial or
//! mispartitioned merge.

use crate::exec::{cell_seed, select_scenarios, shard_of, validate_filter};
use crate::json::Json;
use crate::matrix::{expand, Filter};
use crate::registry::Registry;
use crate::scenario::{Params, ScenarioError};
use crate::store::fingerprint_with_content;
use std::path::Path;

/// Bump when the manifest layout or the shard assignment rule changes;
/// workers then refuse stale manifests instead of mispartitioning.
/// Version history: 1 — global cell count + fingerprint digest;
/// 2 — per-scenario counts/digests (drift errors name the drifted
/// scenarios) and the generated-program corpus identity.
pub const MANIFEST_SCHEMA: u32 = 2;

/// One scenario's slice of the plan: enough to attribute drift to a
/// scenario by name instead of reporting bare campaign-level numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioPlan {
    /// Scenario id.
    pub id: String,
    /// Matched cells of this scenario at plan time.
    pub cells: usize,
    /// Digest of this scenario's planned fingerprints, in plan order.
    pub digest: String,
}

/// The generated-program corpus the campaign was planned over, when any
/// selected scenario sweeps one. Workers rebuild the exact registry
/// from this and verify the digest, so a codegen change between plan
/// and shard time surfaces as *corpus drift* instead of a silently
/// different program population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusPlan {
    /// Kernels per shape.
    pub size: u32,
    /// The corpus seed.
    pub seed: u64,
    /// The corpus population digest at plan time.
    pub digest: String,
}

/// Everything a worker needs to independently claim one shard of a
/// campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The campaign seed every cell seed derives from.
    pub seed: u64,
    /// Number of shards the cell set is partitioned into.
    pub shards: u32,
    /// Resolved scenario ids, in campaign (registration) order.
    pub scenarios: Vec<String>,
    /// Raw `axis=value` filter clauses, as given at plan time.
    pub filter: Vec<String>,
    /// Total matched cells at plan time (drift check).
    pub cells: usize,
    /// Digest of every planned cell fingerprint, in plan order. Catches
    /// count-preserving registry drift (a version bump or axis-value
    /// rename leaves the cell count intact but changes every
    /// fingerprint — and therefore the partition).
    pub digest: String,
    /// Per-scenario counts and digests, in campaign order; lets drift
    /// errors name the scenarios that moved.
    pub per_scenario: Vec<ScenarioPlan>,
    /// The generated-program corpus identity, when the planning
    /// registry carried one and a selected scenario sweeps it.
    pub corpus: Option<CorpusPlan>,
}

/// Hashes the planned fingerprints (order-sensitive) into the
/// manifest's drift digest.
pub fn digest_of(cells: &[PlannedCell]) -> String {
    digest_of_fingerprints(cells.iter().map(|c| c.fingerprint.as_str()))
}

/// [`digest_of`] over bare fingerprints, so per-scenario slices can be
/// digested without cloning cells.
fn digest_of_fingerprints<'a>(fingerprints: impl Iterator<Item = &'a str>) -> String {
    let mut h = crate::store::FNV_OFFSET;
    for fp in fingerprints {
        h = crate::store::fnv1a(fp.as_bytes(), h);
        h = crate::store::fnv1a(&[0xff], h);
    }
    format!("{h:016x}")
}

/// One cell of the planned partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedCell {
    /// Scenario id.
    pub scenario: String,
    /// Cell coordinates.
    pub params: Params,
    /// The derived cell seed.
    pub seed: u64,
    /// The cell's store fingerprint.
    pub fingerprint: String,
    /// The shard that owns the cell.
    pub shard: u32,
}

impl Manifest {
    /// Parses the stored filter clauses.
    pub fn parsed_filter(&self) -> Result<Filter, ScenarioError> {
        Filter::parse(&self.filter).map_err(ScenarioError::Dist)
    }

    /// Serializes deterministically (equal manifests are byte-equal).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("schema".into(), Json::Num(MANIFEST_SCHEMA as f64)),
            // Decimal string: u64 seeds exceed f64's exact range.
            ("seed".into(), Json::str(self.seed.to_string())),
            ("shards".into(), Json::Num(f64::from(self.shards))),
            ("cells".into(), Json::Num(self.cells as f64)),
            ("digest".into(), Json::str(&self.digest)),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(Json::str).collect()),
            ),
            (
                "filter".into(),
                Json::Arr(self.filter.iter().map(Json::str).collect()),
            ),
            (
                "per_scenario".into(),
                Json::Arr(
                    self.per_scenario
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("id".into(), Json::str(&s.id)),
                                ("cells".into(), Json::Num(s.cells as f64)),
                                ("digest".into(), Json::str(&s.digest)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(corpus) = &self.corpus {
            members.push((
                "corpus".into(),
                Json::Obj(vec![
                    ("size".into(), Json::Num(f64::from(corpus.size))),
                    ("seed".into(), Json::str(corpus.seed.to_string())),
                    ("digest".into(), Json::str(&corpus.digest)),
                ]),
            ));
        }
        Json::Obj(members)
    }

    /// Deserializes a manifest; unlike the result store, a schema
    /// mismatch is an error — a worker must never run a partition rule
    /// it does not implement.
    pub fn from_json(doc: &Json) -> Result<Manifest, ScenarioError> {
        let bad = |what: &str| ScenarioError::Dist(format!("manifest: bad {what}"));
        // Exact non-negative integer within [0, max]: out-of-range or
        // fractional values error instead of saturating — a corrupted
        // "size": 5e9 must exit cleanly, not materialize u32::MAX
        // kernels in the worker.
        let exact = |v: f64, max: f64| (v.fract() == 0.0 && (0.0..=max).contains(&v)).then_some(v);
        let schema = doc.get("schema").and_then(Json::as_f64).unwrap_or(0.0) as u32;
        if schema != MANIFEST_SCHEMA {
            return Err(ScenarioError::Dist(format!(
                "manifest schema {schema} != supported {MANIFEST_SCHEMA}"
            )));
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("seed"))?;
        let shards = doc
            .get("shards")
            .and_then(Json::as_f64)
            .and_then(|s| exact(s, u32::MAX as f64))
            .filter(|s| *s >= 1.0)
            .ok_or_else(|| bad("shards"))? as u32;
        let cells = doc
            .get("cells")
            .and_then(Json::as_f64)
            .and_then(|c| exact(c, u32::MAX as f64))
            .ok_or_else(|| bad("cells"))? as usize;
        let strings = |key: &'static str| -> Result<Vec<String>, ScenarioError> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(key))?
                .iter()
                .map(|v| v.as_str().map(str::to_string).ok_or_else(|| bad(key)))
                .collect()
        };
        let digest = doc
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("digest"))?
            .to_string();
        let per_scenario = doc
            .get("per_scenario")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("per_scenario"))?
            .iter()
            .map(|entry| {
                Ok(ScenarioPlan {
                    id: entry
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("per_scenario id"))?
                        .to_string(),
                    cells: entry
                        .get("cells")
                        .and_then(Json::as_f64)
                        .and_then(|c| exact(c, u32::MAX as f64))
                        .ok_or_else(|| bad("per_scenario cells"))?
                        as usize,
                    digest: entry
                        .get("digest")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("per_scenario digest"))?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, ScenarioError>>()?;
        let corpus = match doc.get("corpus") {
            None => None,
            Some(entry) => Some(CorpusPlan {
                size: entry
                    .get("size")
                    .and_then(Json::as_f64)
                    .and_then(|s| exact(s, u32::MAX as f64))
                    .ok_or_else(|| bad("corpus size"))? as u32,
                seed: entry
                    .get("seed")
                    .and_then(Json::as_str)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("corpus seed"))?,
                digest: entry
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("corpus digest"))?
                    .to_string(),
            }),
        };
        Ok(Manifest {
            seed,
            shards,
            scenarios: strings("scenarios")?,
            filter: strings("filter")?,
            cells,
            digest,
            per_scenario,
            corpus,
        })
    }

    /// Loads a manifest from disk.
    pub fn load(path: &Path) -> Result<Manifest, ScenarioError> {
        let doc = Json::parse_file(path).map_err(ScenarioError::Dist)?;
        Manifest::from_json(&doc)
    }

    /// Writes the manifest to disk (atomically, like the store).
    pub fn save(&self, path: &Path) -> Result<(), ScenarioError> {
        crate::store::write_atomic(path, &self.to_json().pretty())
    }
}

/// Plans a campaign into `shards` disjoint shards: validates selection,
/// filter and shard count exactly like a run would, then records the
/// resolved scenario ids, matched cell count and fingerprint digest in
/// a [`Manifest`].
pub fn plan(
    registry: &Registry,
    select: &[String],
    filter_clauses: &[String],
    seed: u64,
    shards: u32,
) -> Result<Manifest, ScenarioError> {
    plan_with_cells(registry, select, filter_clauses, seed, shards).map(|(m, _)| m)
}

/// [`plan`], also returning the planned cells (callers that need the
/// partition — e.g. to print per-shard counts — avoid re-expanding).
pub fn plan_with_cells(
    registry: &Registry,
    select: &[String],
    filter_clauses: &[String],
    seed: u64,
    shards: u32,
) -> Result<(Manifest, Vec<PlannedCell>), ScenarioError> {
    if shards == 0 {
        return Err(ScenarioError::Dist("shard count must be >= 1".into()));
    }
    let filter = Filter::parse(filter_clauses).map_err(ScenarioError::Dist)?;
    let scenarios = select_scenarios(registry, select)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    validate_filter(&specs, &filter)?;
    // Record the corpus identity when the planning registry carries one
    // and a selected scenario actually sweeps it.
    let corpus = registry.gen_options().and_then(|options| {
        specs
            .iter()
            .find_map(|s| s.content_digest.clone())
            .map(|digest| CorpusPlan {
                size: options.corpus_size,
                seed: options.corpus_seed,
                digest,
            })
    });
    let mut manifest = Manifest {
        seed,
        shards,
        scenarios: specs.iter().map(|s| s.id.to_string()).collect(),
        filter: filter_clauses.to_vec(),
        cells: 0,
        digest: String::new(),
        per_scenario: Vec::new(),
        corpus,
    };
    let cells = planned_cells(registry, &manifest)?;
    manifest.cells = cells.len();
    manifest.digest = digest_of(&cells);
    manifest.per_scenario = per_scenario_plans(&manifest.scenarios, &cells);
    Ok((manifest, cells))
}

/// Groups planned cells into per-scenario counts and digests, in
/// campaign order.
fn per_scenario_plans(scenarios: &[String], cells: &[PlannedCell]) -> Vec<ScenarioPlan> {
    scenarios
        .iter()
        .map(|id| {
            let owned = || cells.iter().filter(move |c| &c.scenario == id);
            ScenarioPlan {
                id: id.clone(),
                cells: owned().count(),
                digest: digest_of_fingerprints(owned().map(|c| c.fingerprint.as_str())),
            }
        })
        .collect()
}

/// Expands the manifest's campaign into its planned cells, in the
/// executor's deterministic order, each tagged with its fingerprint and
/// owning shard. Every worker computes the identical partition from
/// this — that is the whole coordination protocol.
pub fn planned_cells(
    registry: &Registry,
    manifest: &Manifest,
) -> Result<Vec<PlannedCell>, ScenarioError> {
    let filter = manifest.parsed_filter()?;
    let scenarios = select_scenarios(registry, &manifest.scenarios)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    validate_filter(&specs, &filter)?;
    let mut cells = Vec::new();
    for spec in &specs {
        for params in expand(&spec.axes) {
            if !filter.matches(&params) {
                continue;
            }
            let seed = cell_seed(manifest.seed, spec.id, &params);
            let fp = fingerprint_with_content(
                spec.id,
                spec.version,
                spec.content_digest.as_deref(),
                &params,
                seed,
            );
            cells.push(PlannedCell {
                scenario: spec.id.to_string(),
                params,
                seed,
                shard: shard_of(&fp, manifest.shards),
                fingerprint: fp,
            });
        }
    }
    Ok(cells)
}

/// Re-expands the manifest and errors if the registry has drifted since
/// plan time: a different cell count (matrix grew or shrank), a
/// different fingerprint digest (version bump, axis-value rename —
/// anything that silently changes the partition), or a generated
/// corpus that no longer digests to the planned population. Either
/// way, shard unions would no longer equal the planned campaign, so
/// re-plan. Drift errors *name the drifted scenarios* via the
/// manifest's per-scenario records.
pub fn check_drift(
    registry: &Registry,
    manifest: &Manifest,
) -> Result<Vec<PlannedCell>, ScenarioError> {
    if let Some(corpus) = &manifest.corpus {
        let current = registry
            .specs()
            .iter()
            .find_map(|s| s.content_digest.clone());
        if current.as_deref() != Some(corpus.digest.as_str()) {
            return Err(ScenarioError::Dist(format!(
                "corpus drift: manifest plans corpus {} (seed {}, {} kernels/shape) but the \
                 registry's corpus digests to {} — codegen or corpus options changed; re-plan",
                corpus.digest,
                corpus.seed,
                corpus.size,
                current.as_deref().unwrap_or("<none>")
            )));
        }
    }
    let cells = planned_cells(registry, manifest)?;
    let current = per_scenario_plans(&manifest.scenarios, &cells);
    // Name the scenarios whose slice moved; fall back to the global
    // comparison for manifests whose per-scenario records are absent
    // (hand-built in tests).
    let drifted: Vec<String> = manifest
        .per_scenario
        .iter()
        .zip(&current)
        .filter(|(planned, now)| planned != now)
        .map(|(planned, now)| {
            format!(
                "{} ({} -> {} cells, digest {} -> {})",
                planned.id, planned.cells, now.cells, planned.digest, now.digest
            )
        })
        .collect();
    if !drifted.is_empty() {
        return Err(ScenarioError::Dist(format!(
            "registry drift in scenario{} {} — re-plan",
            if drifted.len() == 1 { "" } else { "s" },
            drifted.join(", ")
        )));
    }
    if cells.len() != manifest.cells {
        return Err(ScenarioError::Dist(format!(
            "registry drift: manifest plans {} cells but the registry expands to {} — re-plan",
            manifest.cells,
            cells.len()
        )));
    }
    let digest = digest_of(&cells);
    if digest != manifest.digest {
        return Err(ScenarioError::Dist(format!(
            "registry drift: manifest digest {} != registry digest {digest} \
             (same cell count, different fingerprints — version bump or axis rename?) — re-plan",
            manifest.digest
        )));
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::builtin()
    }

    fn domino_select() -> Vec<String> {
        vec!["pipeline-domino".to_string(), "dram-refresh".to_string()]
    }

    #[test]
    fn plan_counts_cells_and_resolves_ids() {
        let m = plan(&registry(), &domino_select(), &[], 42, 3).unwrap();
        assert_eq!(m.shards, 3);
        assert_eq!(m.scenarios, domino_select());
        assert!(m.cells > 0);
        assert_eq!(planned_cells(&registry(), &m).unwrap().len(), m.cells);
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        let r = registry();
        assert!(matches!(
            plan(&r, &["nope".into()], &[], 0, 2),
            Err(ScenarioError::UnknownScenario(_))
        ));
        assert!(matches!(
            plan(&r, &domino_select(), &["notanaxis=1".into()], 0, 2),
            Err(ScenarioError::UnknownFilterAxis(_))
        ));
        assert!(matches!(
            plan(&r, &domino_select(), &["garbage".into()], 0, 2),
            Err(ScenarioError::Dist(_))
        ));
        assert!(matches!(
            plan(&r, &domino_select(), &[], 0, 0),
            Err(ScenarioError::Dist(_))
        ));
    }

    #[test]
    fn manifest_json_round_trips_and_rejects_other_schema() {
        let m = plan(&registry(), &domino_select(), &["n=16".into()], 7, 2).unwrap();
        let back = Manifest::from_json(&Json::parse(&m.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back, m);
        let mut doc = m.to_json();
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::Num(99.0);
        }
        assert!(matches!(
            Manifest::from_json(&doc),
            Err(ScenarioError::Dist(_))
        ));
    }

    #[test]
    fn drift_check_catches_cell_count_changes() {
        let mut m = plan(&registry(), &domino_select(), &[], 1, 2).unwrap();
        assert!(check_drift(&registry(), &m).is_ok());
        m.cells += 1;
        assert!(matches!(
            check_drift(&registry(), &m),
            Err(ScenarioError::Dist(_))
        ));
    }

    #[test]
    fn drift_check_catches_count_preserving_version_bumps() {
        use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioSpec};

        /// Fixed 2-cell matrix; only the version varies.
        struct Versioned(u32);
        impl Scenario for Versioned {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    id: "versioned",
                    version: self.0,
                    title: "v",
                    source_crate: "harness",
                    property: "p",
                    uncertainty: "u",
                    quality: "q",
                    catalog_id: None,
                    content_digest: None,
                    axes: vec![Axis::new("a", [1, 2])],
                    headline_metric: "m",
                    smaller_is_better: true,
                }
            }
            fn run(&self, _: &Params, _: u64) -> Result<CellResult, ScenarioError> {
                Ok(CellResult::new(vec![("m", 0.0)]))
            }
        }

        let reg = |version| {
            let mut r = Registry::empty();
            r.register(Box::new(Versioned(version)));
            r
        };
        let m = plan(&reg(1), &["versioned".into()], &[], 0, 2).unwrap();
        assert!(check_drift(&reg(1), &m).is_ok());
        // Same cell count under v2, but every fingerprint changed: the
        // digest must catch what the count cannot.
        let err = check_drift(&reg(2), &m).unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(ref msg) if msg.contains("digest")));
    }
}
