//! Dynamic work stealing between shard processes.
//!
//! The static fingerprint partition balances cell *counts*, not cell
//! *costs*: one slow scenario can leave N-1 shards idle while the
//! unlucky shard grinds. This module turns the static assignment into
//! an *initial lease* and lets idle shards steal the rest:
//!
//! * The campaign's global lazy index space is cut into [`Chunk`]s —
//!   contiguous cell ranges that never span scenarios, sized so each
//!   chunk carries roughly equal *cost* under the manifest's
//!   per-scenario weights (calibrated at plan time from a committed
//!   baseline store). Every shard derives the identical chunk map from
//!   the manifest alone; there is still no coordinator.
//! * Each chunk has a deterministic `initial_shard` (greedy
//!   least-loaded assignment in chunk order). A shard first claims and
//!   executes its own chunks, then sweeps the remaining chunk list and
//!   steals whatever is still unleased.
//! * Claiming goes through *lease files* in a shared directory beside
//!   the manifest: `O_CREAT|O_EXCL` file creation is the atomic
//!   claim, so every chunk is executed by exactly one live shard, with
//!   no locks and no communication beyond the filesystem.
//!
//! Determinism is untouched: a cell's result is a pure function of
//! `(params, seed)`, so it does not matter *which* shard computes it —
//! `merge` still verifies that overlapping (stolen vs. native) results
//! are byte-identical and that the union covers exactly the planned
//! cell set, and the merged store remains byte-identical to a
//! single-process run.

use crate::dist::plan::{check_drift, Manifest};
use crate::exec::{run_campaign_with, Campaign, CellDomain, ExecConfig, ExecHooks, Shard};
use crate::registry::Registry;
use crate::scenario::ScenarioError;
use crate::store::ResultStore;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Chunk-map granularity: target chunks per shard. High enough that a
/// slow shard's backlog is stealable in pieces, low enough that lease
/// traffic (one file create per chunk) stays negligible.
pub const CHUNKS_PER_SHARD: usize = 8;

/// One leasable unit of campaign work: a contiguous range of the
/// global lazy index space, never spanning scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Lease id (position in the deterministic chunk map).
    pub id: usize,
    /// Index into the manifest's scenario list.
    pub scenario: usize,
    /// Global lazy index range (includes filtered-out cells; the
    /// executor skips those while scanning).
    pub range: Range<usize>,
    /// Estimated cost: lazy cells × the scenario's manifest weight.
    pub cost: f64,
    /// The shard this chunk is initially leased to.
    pub initial_shard: u32,
}

/// Deterministically cuts the manifest's campaign into cost-balanced
/// chunks and assigns each an initial shard. Every worker holding the
/// manifest computes the identical map — chunk ids are the whole
/// coordination vocabulary.
pub fn chunk_map(registry: &Registry, manifest: &Manifest) -> Result<Vec<Chunk>, ScenarioError> {
    let scenarios = crate::exec::select_scenarios(registry, &manifest.scenarios)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    // Replicates multiply every matrix in the global lazy index space,
    // so chunk sizes (and therefore the initial lease balance) account
    // for the full replicated cell load.
    let reps = manifest.replicates.max(1) as usize;
    let sizes: Vec<usize> = specs.iter().map(|s| s.matrix_size() * reps).collect();
    let weights: Vec<f64> = specs.iter().map(|s| manifest.weight_of(s.id)).collect();
    let total_cost: f64 = sizes
        .iter()
        .zip(&weights)
        .map(|(&n, &w)| n as f64 * w)
        .sum();
    let target = (manifest.shards as usize * CHUNKS_PER_SHARD).max(1);
    let cost_per_chunk = (total_cost / target as f64).max(f64::MIN_POSITIVE);

    let mut chunks = Vec::new();
    let mut base = 0usize;
    for ((size, weight), _) in sizes.iter().zip(&weights).zip(&specs) {
        let cells_per_chunk = ((cost_per_chunk / weight).round() as usize).max(1);
        let mut start = 0usize;
        while start < *size {
            let end = (start + cells_per_chunk).min(*size);
            chunks.push(Chunk {
                id: chunks.len(),
                scenario: chunks.len(), // placeholder, fixed below
                range: base + start..base + end,
                cost: (end - start) as f64 * weight,
                initial_shard: 0,
            });
            start = end;
        }
        base += size;
    }
    // Second pass: scenario attribution (which range belongs to which
    // scenario is recoverable from the prefix sums).
    let mut prefix = Vec::with_capacity(sizes.len() + 1);
    let mut acc = 0usize;
    for size in &sizes {
        prefix.push(acc);
        acc += size;
    }
    prefix.push(acc);
    for chunk in &mut chunks {
        chunk.scenario = prefix.partition_point(|&p| p <= chunk.range.start) - 1;
    }
    // Initial lease: greedy least-loaded in chunk order — deterministic
    // and cost-balanced under the manifest's weights.
    let mut load = vec![0.0f64; manifest.shards as usize];
    for chunk in &mut chunks {
        let shard = load
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(0);
        chunk.initial_shard = shard as u32;
        load[shard] += chunk.cost;
    }
    Ok(chunks)
}

/// The shared lease directory: one file per claimed chunk, created
/// with `O_CREAT|O_EXCL` so exactly one shard wins each chunk.
///
/// A lease directory belongs to exactly one *campaign attempt*: it is
/// stamped with the manifest's fingerprint digest, and [`LeaseDir::open`]
/// refuses a directory stamped for a different campaign — re-planning
/// to the same manifest path cannot silently starve the new campaign on
/// stale leases. Leases are never reclaimed: if a shard dies after
/// claiming a chunk, its unjournaled cells are simply lost from this
/// attempt (merge's coverage check reports them loudly). Recovery is to
/// remove the lease directory (or pass a fresh `--leases DIR`) and
/// re-run the shards with `--resume`: every journaled cell replays from
/// the store, so only the dead shard's unfinished work recomputes.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    dir: PathBuf,
}

impl LeaseDir {
    /// The default lease directory of a manifest: `manifest.json` →
    /// `manifest.json.leases/` (same directory, so every shard of a
    /// campaign sees the same leases).
    pub fn for_manifest(manifest_path: &Path) -> PathBuf {
        let mut name = manifest_path.file_name().unwrap_or_default().to_os_string();
        name.push(".leases");
        manifest_path.with_file_name(name)
    }

    /// Opens (creating) a lease directory without a campaign identity
    /// check — the low-level constructor for tests and tooling that
    /// inspect leases after the fact. Workers should use
    /// [`LeaseDir::open`].
    pub fn create(dir: &Path) -> Result<LeaseDir, ScenarioError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ScenarioError::Dist(format!("mkdir {}: {e}", dir.display())))?;
        Ok(LeaseDir {
            dir: dir.to_path_buf(),
        })
    }

    /// Opens (creating) a lease directory *for this campaign*: stamps a
    /// fresh directory with the manifest's digest, and rejects a
    /// directory stamped for a different campaign — stale leases from
    /// an earlier plan at the same path fail loudly instead of silently
    /// starving every shard.
    ///
    /// The stamp is published atomically: the digest is written to a
    /// private temp file and `hard_link`ed into place, so exactly one
    /// campaign wins a fresh directory even when shards of *different*
    /// campaigns race to stamp it — the loser reads the winner's
    /// complete stamp and errors (no read-then-write window in which
    /// both could proceed).
    pub fn open(dir: &Path, manifest: &Manifest) -> Result<LeaseDir, ScenarioError> {
        let leases = LeaseDir::create(dir)?;
        let id_path = leases.dir.join("campaign.id");
        let stamp = format!("{}\n", manifest.digest);
        let tmp = leases
            .dir
            .join(format!(".campaign.id.tmp.{}", std::process::id()));
        // The stamp bytes must be durable *before* hard_link publishes
        // the name: the link is metadata, so a crash right after it
        // could otherwise leave an empty or torn stamp at the published
        // path — which would then reject every future manifest against
        // this directory as a digest mismatch.
        std::fs::File::create(&tmp)
            .and_then(|mut f| {
                std::io::Write::write_all(&mut f, stamp.as_bytes())?;
                f.sync_all()
            })
            .map_err(|e| ScenarioError::Dist(format!("write {}: {e}", tmp.display())))?;
        let published = std::fs::hard_link(&tmp, &id_path);
        std::fs::remove_file(&tmp).ok();
        match published {
            Ok(()) => {
                // And the link itself must survive power loss — the
                // stamp is what rejects stale lease directories.
                crate::store::sync_dir(&leases.dir)
                    .map_err(|e| ScenarioError::Dist(e.to_string()))?;
                Ok(leases)
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let existing = std::fs::read_to_string(&id_path)
                    .map_err(|e| ScenarioError::Dist(format!("read {}: {e}", id_path.display())))?;
                if existing == stamp {
                    Ok(leases)
                } else if existing.trim().is_empty() {
                    // A pre-fix crash (or a foreign tool) left a torn
                    // stamp: name the real problem and the remedy
                    // instead of reporting a bogus digest mismatch.
                    Err(ScenarioError::Dist(format!(
                        "lease directory {} has an empty campaign stamp (crash while \
                         stamping?) — remove the directory and re-run with --resume",
                        dir.display()
                    )))
                } else {
                    Err(ScenarioError::Dist(format!(
                        "lease directory {} belongs to campaign {} but this manifest digests \
                         to {} — remove the directory or pass a fresh --leases DIR",
                        dir.display(),
                        existing.trim(),
                        manifest.digest
                    )))
                }
            }
            Err(e) => Err(ScenarioError::Dist(format!(
                "stamp {}: {e}",
                id_path.display()
            ))),
        }
    }

    fn lease_path(&self, chunk: usize) -> PathBuf {
        self.dir.join(format!("chunk-{chunk:06}.lease"))
    }

    /// Attempts to claim a chunk for a shard. `Ok(true)` means this
    /// shard now owns the chunk; `Ok(false)` means another shard beat
    /// it there. Atomic via exclusive file creation.
    pub fn claim(&self, chunk: usize, shard: u32) -> Result<bool, ScenarioError> {
        let path = self.lease_path(chunk);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                use std::io::Write as _;
                let body = format!("{{\"chunk\":{chunk},\"shard\":{shard}}}\n");
                file.write_all(body.as_bytes())
                    .and_then(|()| file.sync_data())
                    .map_err(|e| {
                        ScenarioError::Dist(format!("write lease {}: {e}", path.display()))
                    })?;
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(ScenarioError::Dist(format!(
                "claim lease {}: {e}",
                path.display()
            ))),
        }
    }

    /// Which shard holds a chunk's lease, if any (post-campaign
    /// reporting; the claim protocol itself never reads leases).
    pub fn holder(&self, chunk: usize) -> Result<Option<u32>, ScenarioError> {
        let path = self.lease_path(chunk);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(ScenarioError::Dist(format!(
                    "read lease {}: {e}",
                    path.display()
                )))
            }
        };
        let doc = crate::json::Json::parse(&text)
            .map_err(|e| ScenarioError::Dist(format!("lease {}: {e}", path.display())))?;
        Ok(doc
            .get("shard")
            .and_then(crate::json::Json::as_f64)
            .map(|s| s as u32))
    }
}

/// What a stealing shard run did, beyond the campaign itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Chunks this shard claimed and executed.
    pub claimed_chunks: usize,
    /// Of those, chunks stolen from another shard's initial lease.
    pub stolen_chunks: usize,
    /// Lazy cells in this shard's initial lease (what a static
    /// partition would have pinned on it).
    pub lease_cells: usize,
    /// Lazy cells this shard actually executed (claimed chunks). A slow
    /// shard ends below its lease; fast shards end above theirs.
    pub executed_lazy_cells: usize,
}

/// Runs one shard of the manifest's campaign with work stealing: claim
/// and execute the initial lease chunk by chunk, then steal whatever
/// other shards have not claimed. The returned campaign covers exactly
/// the cells of the chunks this shard won, in deterministic global
/// order (which chunks those *are* is scheduling-dependent — that is
/// the point — but every cell's result is not).
///
/// `leases` must be a directory opened for *this* campaign (see
/// [`LeaseDir::open`]); a chunk whose holder dies mid-execution stays
/// leased and is surfaced by merge's coverage check — recover by
/// clearing the lease directory and re-running with `--resume`.
pub fn run_shard_stealing(
    registry: &Registry,
    manifest: &Manifest,
    index: u32,
    threads: usize,
    store: &mut ResultStore,
    leases: &LeaseDir,
    hooks: ExecHooks<'_>,
) -> Result<(Campaign, StealStats), ScenarioError> {
    Shard::new(index, manifest.shards)?;
    check_drift(registry, manifest)?;
    let chunks = chunk_map(registry, manifest)?;
    let filter = manifest.parsed_filter()?;
    // Replicates come from the manifest so every shard expands the same
    // replicated matrix; a range run never folds (the merge engine
    // folds once all shards' raw replicates are fused), so
    // keep_replicates is irrelevant here.
    let config = ExecConfig {
        threads,
        seed: manifest.seed,
        replicates: manifest.replicates,
        keep_replicates: true,
    };

    let mut stats = StealStats::default();
    for chunk in &chunks {
        if chunk.initial_shard == index {
            stats.lease_cells += chunk.range.len();
        }
    }

    // Own chunks first (the initial lease), then the steal sweep.
    // Deliberately one claim per executor invocation, not a bulk claim
    // of the whole lease: a chunk only becomes stealable once it is
    // *unclaimed*, so claiming lazily keeps a slow shard's backlog
    // available to its peers — the entire point of this module. The
    // price is that in-chunk parallelism is capped by the chunk's cell
    // count; chunk sizing (CHUNKS_PER_SHARD) keeps that acceptable.
    let order = chunks
        .iter()
        .filter(|c| c.initial_shard == index)
        .chain(chunks.iter().filter(|c| c.initial_shard != index));
    // The caller's progress hook sees campaign-level numbers: executed
    // accumulates across chunks instead of resetting at every
    // per-chunk executor invocation, and the total is the whole lazy
    // cell space (the shard cannot know up front how much it will end
    // up claiming).
    let campaign_lazy_cells: usize = chunks.iter().map(|c| c.range.len()).sum();
    let mut executed_so_far = 0usize;
    let mut memoized_so_far = 0usize;
    let mut pieces: Vec<(usize, Campaign)> = Vec::new();
    for chunk in order {
        let won = {
            let _claim_span = hooks.obs.map(|o| o.span("lease/claim", "steal"));
            leases.claim(chunk.id, index)?
        };
        if let Some(obs) = hooks.obs {
            // A lost claim is the steal-contention signal: some peer
            // already holds (or stole) the chunk.
            obs.count(
                if won {
                    "steal/claim_won"
                } else {
                    "steal/claim_lost"
                },
                1,
            );
            if won && chunk.initial_shard != index {
                obs.count("steal/stolen", 1);
            }
        }
        if !won {
            continue;
        }
        let range = chunk.range.clone();
        let base = executed_so_far;
        let memo_base = memoized_so_far;
        let accumulated = hooks.progress.map(|progress| {
            move |p: crate::exec::ExecProgress| {
                progress(crate::exec::ExecProgress {
                    executed: base + p.executed,
                    memoized: memo_base + p.memoized,
                    total: campaign_lazy_cells,
                })
            }
        });
        let chunk_hooks = ExecHooks {
            progress: accumulated
                .as_ref()
                .map(|a| a as &(dyn Fn(crate::exec::ExecProgress) + Sync)),
            on_result: hooks.on_result,
            on_timing: hooks.on_timing,
            obs: hooks.obs,
            cancel: hooks.cancel,
        };
        let piece = run_campaign_with(
            registry,
            &manifest.scenarios,
            &filter,
            &config,
            store,
            CellDomain::Ranges(std::slice::from_ref(&range)),
            chunk_hooks,
        )?;
        executed_so_far += piece.executed;
        memoized_so_far += piece.memoized;
        stats.claimed_chunks += 1;
        stats.executed_lazy_cells += chunk.range.len();
        if chunk.initial_shard != index {
            stats.stolen_chunks += 1;
        }
        pieces.push((chunk.id, piece));
    }

    // Chunk ids ascend with global indices, so sorting by id restores
    // the executor's deterministic cell order for this shard's slice.
    pieces.sort_by_key(|(id, _)| *id);
    let mut campaign = Campaign {
        seed: manifest.seed,
        cells: Vec::new(),
        executed: 0,
        memoized: 0,
        replicates: manifest.replicates,
    };
    for (_, piece) in pieces {
        campaign.executed += piece.executed;
        campaign.memoized += piece.memoized;
        campaign.cells.extend(piece.cells);
    }
    Ok((campaign, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist;
    use crate::exec::run_campaign;
    use crate::matrix::Filter;

    fn select() -> Vec<String> {
        vec!["pipeline-domino".to_string(), "dram-refresh".to_string()]
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("harness-steal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chunk_map_is_deterministic_disjoint_and_covering() {
        let registry = Registry::builtin();
        let manifest = dist::plan(&registry, &select(), &[], 42, 3).unwrap();
        let chunks = chunk_map(&registry, &manifest).unwrap();
        assert_eq!(chunks, chunk_map(&registry, &manifest).unwrap());
        // Contiguous cover of the lazy space, ids in range order.
        let total: usize = 8; // domino (4) + dram-refresh (4) lazy cells
        let mut next = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.id, i);
            assert_eq!(chunk.range.start, next);
            assert!(chunk.range.end > chunk.range.start);
            assert!(chunk.initial_shard < manifest.shards);
            next = chunk.range.end;
        }
        assert_eq!(next, total, "chunks must cover the lazy space");
        // Chunks never span scenarios: the domino/dram boundary at 4.
        assert!(chunks
            .iter()
            .all(|c| c.range.end <= 4 || c.range.start >= 4));
    }

    #[test]
    fn weights_shift_the_initial_lease_balance() {
        // The full registry (~100 cells) gives the chunker room to
        // react to weights; `select()`'s 8 cells would not.
        let registry = Registry::builtin();
        let mut manifest = dist::plan(&registry, &[], &[], 42, 2).unwrap();
        let even = chunk_map(&registry, &manifest).unwrap();
        // Make the first scenario's cells 50× costlier: its chunks
        // shrink (more stealable pieces) and the greedy lease
        // rebalances.
        manifest.per_scenario[0].weight = 50.0;
        let skewed = chunk_map(&registry, &manifest).unwrap();
        let first_chunks = |chunks: &[Chunk]| chunks.iter().filter(|c| c.scenario == 0).count();
        assert!(
            first_chunks(&skewed) > first_chunks(&even),
            "a costlier scenario must be cut into more chunks"
        );
        let lease_cost = |chunks: &[Chunk], shard: u32| -> f64 {
            chunks
                .iter()
                .filter(|c| c.initial_shard == shard)
                .map(|c| c.cost)
                .sum()
        };
        let (a, b) = (lease_cost(&skewed, 0), lease_cost(&skewed, 1));
        assert!(
            (a - b).abs() / (a + b) < 0.35,
            "greedy lease must stay cost-balanced: {a} vs {b}"
        );
    }

    #[test]
    fn lease_claims_are_exclusive() {
        let dir = tempdir("claims");
        let leases = LeaseDir::create(&dir).unwrap();
        assert!(leases.claim(0, 1).unwrap());
        assert!(!leases.claim(0, 2).unwrap(), "second claim must lose");
        assert_eq!(leases.holder(0).unwrap(), Some(1));
        assert_eq!(leases.holder(9).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_dir_rejects_a_different_campaign() {
        let registry = Registry::builtin();
        let dir = tempdir("identity");
        let manifest = dist::plan(&registry, &select(), &[], 42, 2).unwrap();
        LeaseDir::open(&dir, &manifest).unwrap();
        // Same campaign re-opens fine (concurrent shards do this).
        LeaseDir::open(&dir, &manifest).unwrap();
        // A re-planned campaign (different seed → different digest)
        // must be refused instead of silently starving on stale leases.
        let replanned = dist::plan(&registry, &select(), &[], 43, 2).unwrap();
        let err = LeaseDir::open(&dir, &replanned).unwrap_err();
        assert!(
            matches!(err, ScenarioError::Dist(ref m) if m.contains("remove the directory")),
            "got: {err}"
        );
        // An empty (torn) stamp is corruption with a remediation hint,
        // not a bogus digest mismatch against campaign "".
        std::fs::write(dir.join("campaign.id"), "").unwrap();
        let err = LeaseDir::open(&dir, &manifest).unwrap_err();
        assert!(
            matches!(err, ScenarioError::Dist(ref m)
                if m.contains("empty campaign stamp") && m.contains("remove the directory")),
            "got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lone_stealing_shard_sweeps_the_whole_campaign() {
        // With no competitors, shard 0 steals every other lease and the
        // merged (single) store equals the single-process store.
        let registry = Registry::builtin();
        let manifest = dist::plan(&registry, &select(), &[], 42, 3).unwrap();
        let dir = tempdir("lone");
        let leases = LeaseDir::open(&dir, &manifest).unwrap();
        let mut store = ResultStore::new();
        // Progress must accumulate across chunk invocations (not reset
        // per chunk) against the campaign-wide total.
        let seen = std::sync::Mutex::new(Vec::new());
        let progress = |p: crate::exec::ExecProgress| {
            assert_eq!(p.total, 8, "campaign-wide total");
            seen.lock().unwrap().push(p.executed);
        };
        let (campaign, stats) = run_shard_stealing(
            &registry,
            &manifest,
            0,
            2,
            &mut store,
            &leases,
            ExecHooks {
                progress: Some(&progress),
                on_result: None,
                on_timing: None,
                obs: None,
                cancel: None,
            },
        )
        .unwrap();
        let ticks = seen.into_inner().unwrap();
        assert_eq!(ticks.len(), 8, "one heartbeat per executed cell");
        assert_eq!(ticks.iter().max(), Some(&8), "accumulates to the campaign");
        assert!(stats.stolen_chunks > 0, "everything else must be stolen");
        assert_eq!(
            stats.claimed_chunks,
            chunk_map(&registry, &manifest).unwrap().len()
        );
        assert!(stats.executed_lazy_cells > stats.lease_cells);

        let mut single = ResultStore::new();
        let full = run_campaign(
            &registry,
            &select(),
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 42,
                ..ExecConfig::default()
            },
            &mut single,
        )
        .unwrap();
        assert_eq!(
            campaign.cells, full.cells,
            "deterministic order and content"
        );
        assert_eq!(store.to_json().pretty(), single.to_json().pretty());
        dist::merge::verify_coverage(&registry, &manifest, &store).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn competing_shards_partition_by_lease_and_merge_byte_identically() {
        // All three shards run in-process, sequentially; later shards
        // find earlier leases taken, so claims partition the chunk set.
        let registry = Registry::builtin();
        let manifest = dist::plan(&registry, &select(), &[], 9, 3).unwrap();
        let dir = tempdir("competing");
        let leases = LeaseDir::open(&dir, &manifest).unwrap();
        let mut stores = Vec::new();
        let mut claimed = 0usize;
        for index in 0..3 {
            let mut store = ResultStore::new();
            let (_, stats) = run_shard_stealing(
                &registry,
                &manifest,
                index,
                1,
                &mut store,
                &leases,
                ExecHooks::default(),
            )
            .unwrap();
            claimed += stats.claimed_chunks;
            stores.push(store);
        }
        assert_eq!(claimed, chunk_map(&registry, &manifest).unwrap().len());
        let (fused, stats) = dist::merge_stores(&stores).unwrap();
        assert_eq!(stats.duplicates, 0, "leases are exclusive");
        dist::merge::verify_coverage(&registry, &manifest, &fused).unwrap();
        let mut single = ResultStore::new();
        run_campaign(
            &registry,
            &select(),
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 9,
                ..ExecConfig::default()
            },
            &mut single,
        )
        .unwrap();
        assert_eq!(fused.to_json().pretty(), single.to_json().pretty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_map_scales_with_the_replicate_multiplier() {
        let registry = Registry::builtin();
        let base = dist::plan(&registry, &select(), &[], 42, 3).unwrap();
        let mut replicated = base.clone();
        replicated.replicates = 16;
        replicated.cells = base.cells * 16;
        let base_chunks = chunk_map(&registry, &base).unwrap();
        let rep_chunks = chunk_map(&registry, &replicated).unwrap();
        let covered = |chunks: &[Chunk]| chunks.last().map_or(0, |c| c.range.end);
        assert_eq!(
            covered(&rep_chunks),
            covered(&base_chunks) * 16,
            "chunks must cover the replicated lazy space"
        );
        // Contiguous cover, as in the unreplicated case.
        let mut next = 0usize;
        for chunk in &rep_chunks {
            assert_eq!(chunk.range.start, next);
            next = chunk.range.end;
        }
        // Replicate groups are rep-fastest in the lazy space, so a
        // chunk boundary inside a group is fine for execution — but
        // the per-shard lease totals must stay balanced in *cells*.
        let lease_cells = |chunks: &[Chunk], shard: u32| -> usize {
            chunks
                .iter()
                .filter(|c| c.initial_shard == shard)
                .map(|c| c.range.len())
                .sum()
        };
        let per_shard: Vec<usize> = (0..3).map(|s| lease_cells(&rep_chunks, s)).collect();
        let (min, max) = (
            *per_shard.iter().min().unwrap(),
            *per_shard.iter().max().unwrap(),
        );
        assert!(
            max - min <= covered(&rep_chunks) / 3,
            "replicated lease balance skewed: {per_shard:?}"
        );
    }
}
