//! The merge engine: fuses shard stores into one canonical store.
//!
//! Because the store is keyed by cell fingerprint and serializes sorted
//! by fingerprint, merging is a set union: the fused store of N
//! disjoint shard runs is byte-identical to the store a single-process
//! run of the same campaign would have written. Two safety nets guard
//! that equivalence: a fingerprint appearing in several inputs with
//! *different* results is reported as a determinism violation (some
//! worker broke the `run(params, seed)` purity contract), and
//! [`verify_coverage`] checks a fused store against the manifest's
//! planned cell set, catching lost shards or stray extra cells.

use crate::dist::plan::{check_drift_observing, Manifest};
use crate::registry::Registry;
use crate::scenario::ScenarioError;
use crate::store::ResultStore;

/// What a merge did, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Cells in the fused store.
    pub cells: usize,
    /// Inputs' cells that were already present with an identical
    /// result (harmless overlap, e.g. re-run shards).
    pub duplicates: usize,
}

/// Fuses shard stores (in order) into one store. Identical duplicate
/// cells are tolerated and counted; a fingerprint collision with
/// *conflicting* results aborts the merge — that can only happen when
/// a scenario violated determinism, and silently picking a winner
/// would launder the violation into the canonical store.
pub fn merge_stores(stores: &[ResultStore]) -> Result<(ResultStore, MergeStats), ScenarioError> {
    let mut fused = ResultStore::new();
    let mut stats = MergeStats::default();
    for (i, store) in stores.iter().enumerate() {
        for (fp, cell) in store.iter() {
            match fused.get_by_fingerprint(fp) {
                None => fused.insert_cell(fp.to_string(), cell.clone()),
                Some(existing) if existing == cell => stats.duplicates += 1,
                Some(existing) => {
                    return Err(ScenarioError::Dist(format!(
                        "determinism violation merging input {i}: fingerprint {fp} \
                         ({} {}) has conflicting results {:?} vs {:?}",
                        cell.scenario, cell.params_key, existing.result, cell.result
                    )));
                }
            }
        }
    }
    stats.cells = fused.len();
    Ok((fused, stats))
}

/// Verifies a fused store covers *exactly* the manifest's planned cell
/// set: every planned fingerprint present, no extras. With the
/// determinism contract this makes the fused store byte-identical to a
/// single-process run's store of the same campaign. One streaming pass
/// serves both the drift check and the membership test — no
/// materialized cell list and no double enumeration, whatever the
/// campaign size. Drift errors win over coverage errors: when the
/// registry moved, "missing cell" would misdiagnose the real problem.
pub fn verify_coverage(
    registry: &Registry,
    manifest: &Manifest,
    store: &ResultStore,
) -> Result<(), ScenarioError> {
    let mut planned = 0usize;
    let mut first_missing: Option<String> = None;
    check_drift_observing(registry, manifest, &mut |cell| {
        planned += 1;
        if first_missing.is_none() && !store.contains(&cell.fingerprint) {
            first_missing = Some(format!(
                "merged store is missing planned cell {} ({} {}) — shard {} lost?",
                cell.fingerprint, cell.scenario, cell.params, cell.shard
            ));
        }
    })?;
    if let Some(missing) = first_missing {
        return Err(ScenarioError::Dist(missing));
    }
    if store.len() != planned {
        return Err(ScenarioError::Dist(format!(
            "merged store has {} cells but the manifest plans {planned} — \
             extra cells from an unrelated campaign?",
            store.len(),
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CellResult, Params};

    fn params(n: u64) -> Params {
        Params::new(vec![("n".into(), n.to_string())])
    }

    fn store_with(cells: &[(u64, f64)]) -> ResultStore {
        let mut s = ResultStore::new();
        for &(n, v) in cells {
            s.insert("s", 1, &params(n), n, CellResult::new(vec![("m", v)]));
        }
        s
    }

    #[test]
    fn disjoint_stores_union() {
        let a = store_with(&[(1, 1.0), (2, 2.0)]);
        let b = store_with(&[(3, 3.0)]);
        let (fused, stats) = merge_stores(&[a, b]).unwrap();
        assert_eq!(fused.len(), 3);
        assert_eq!(
            stats,
            MergeStats {
                cells: 3,
                duplicates: 0
            }
        );
    }

    #[test]
    fn identical_overlap_is_counted_not_fatal() {
        let a = store_with(&[(1, 1.0), (2, 2.0)]);
        let b = store_with(&[(2, 2.0), (3, 3.0)]);
        let (fused, stats) = merge_stores(&[a, b]).unwrap();
        assert_eq!(fused.len(), 3);
        assert_eq!(stats.duplicates, 1);
    }

    #[test]
    fn conflicting_results_abort() {
        let a = store_with(&[(1, 1.0)]);
        let b = store_with(&[(1, 1.5)]);
        let err = merge_stores(&[a, b]).unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(ref m) if m.contains("determinism")));
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        let (fused, stats) = merge_stores(&[]).unwrap();
        assert!(fused.is_empty());
        assert_eq!(stats.cells, 0);
    }
}
