//! The merge engine: fuses shard stores into one canonical store.
//!
//! Because the store is keyed by cell fingerprint and serializes sorted
//! by fingerprint, merging is a set union: the fused store of N
//! disjoint shard runs is byte-identical to the store a single-process
//! run of the same campaign would have written. Two safety nets guard
//! that equivalence: a fingerprint appearing in several inputs with
//! *different* results is reported as a determinism violation (some
//! worker broke the `run(params, seed)` purity contract), and
//! [`verify_coverage`] checks a fused store against the manifest's
//! planned cell set, catching lost shards or stray extra cells.

use crate::dist::plan::{check_drift_observing, visit_planned_cells, Manifest, PlannedCell};
use crate::dist::steal::{chunk_map, Chunk, LeaseDir};
use crate::registry::Registry;
use crate::scenario::ScenarioError;
use crate::store::{ResultStore, StoredCell};
use crate::telemetry::Telemetry;

/// What a merge did, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Cells in the fused store.
    pub cells: usize,
    /// Inputs' cells that were already present with an identical
    /// result (harmless overlap, e.g. re-run shards).
    pub duplicates: usize,
}

/// Fuses shard stores (in order) into one store. Identical duplicate
/// cells are tolerated and counted; a fingerprint collision with
/// *conflicting* results aborts the merge — that can only happen when
/// a scenario violated determinism, and silently picking a winner
/// would launder the violation into the canonical store.
pub fn merge_stores(stores: &[ResultStore]) -> Result<(ResultStore, MergeStats), ScenarioError> {
    merge_stores_observed(stores, None)
}

/// [`merge_stores`] with an optional [`crate::obs::Obs`] recorder: the
/// whole fuse runs under a `merge` span (the CLI's `merge --trace`
/// path). Purely observational — the fused store is byte-identical
/// with or without the recorder.
pub fn merge_stores_observed(
    stores: &[ResultStore],
    obs: Option<&crate::obs::Obs>,
) -> Result<(ResultStore, MergeStats), ScenarioError> {
    let _merge_span = obs.map(|o| o.span("merge", "dist"));
    fuse(
        stores
            .iter()
            .map(|store| store.clone().into_map())
            .collect(),
    )
}

/// [`merge_stores`] consuming its inputs: the cells are *moved* into
/// the fused store, so fusing N shard stores costs zero clones — the
/// path the CLI merge and the binary-store shard workflow take.
pub fn merge_stores_owned(
    stores: Vec<ResultStore>,
) -> Result<(ResultStore, MergeStats), ScenarioError> {
    merge_stores_owned_observed(stores, None)
}

/// [`merge_stores_owned`] under a `merge` span when a recorder is
/// given. Purely observational, like [`merge_stores_observed`].
pub fn merge_stores_owned_observed(
    stores: Vec<ResultStore>,
    obs: Option<&crate::obs::Obs>,
) -> Result<(ResultStore, MergeStats), ScenarioError> {
    let _merge_span = obs.map(|o| o.span("merge", "dist"));
    fuse(stores.into_iter().map(ResultStore::into_map).collect())
}

/// The shared fuse. Every input tree is already fingerprint-sorted, so
/// each one is folded in with two linear passes: a borrow-only scan of
/// the two sorted key streams that separates harmless duplicates from
/// determinism violations (advancing whichever side holds the smaller
/// key — no cell is moved or cloned to be checked), then a
/// [`BTreeMap::append`] bulk fuse, which merges the source trees
/// node-wise instead of paying a lookup-and-rebalance per cell. The
/// overwrite-on-collision semantics of `append` are safe precisely
/// because the scan just proved every collision identical.
fn fuse(
    inputs: Vec<std::collections::BTreeMap<String, StoredCell>>,
) -> Result<(ResultStore, MergeStats), ScenarioError> {
    let mut stats = MergeStats::default();
    let mut fused: std::collections::BTreeMap<String, StoredCell> = Default::default();
    for (input, mut incoming) in inputs.into_iter().enumerate() {
        if fused.is_empty() {
            fused = incoming;
            continue;
        }
        let mut kept_stream = fused.iter();
        let mut new_stream = incoming.iter();
        let (mut kept_head, mut new_head) = (kept_stream.next(), new_stream.next());
        while let (Some((kept_fp, kept)), Some((fp, cell))) = (kept_head, new_head) {
            match kept_fp.cmp(fp) {
                std::cmp::Ordering::Less => kept_head = kept_stream.next(),
                std::cmp::Ordering::Greater => new_head = new_stream.next(),
                std::cmp::Ordering::Equal => {
                    if kept == cell {
                        stats.duplicates += 1;
                    } else {
                        return Err(ScenarioError::Dist(format!(
                            "determinism violation merging input {input}: fingerprint {fp} \
                             ({} {}) has conflicting results {:?} vs {:?}",
                            cell.scenario, cell.params_key, kept.result, cell.result
                        )));
                    }
                    kept_head = kept_stream.next();
                    new_head = new_stream.next();
                }
            }
        }
        fused.append(&mut incoming);
    }
    stats.cells = fused.len();
    Ok((ResultStore::from_map(fused), stats))
}

/// Verifies a fused store covers *exactly* the manifest's planned cell
/// set: every planned fingerprint present, no extras. With the
/// determinism contract this makes the fused store byte-identical to a
/// single-process run's store of the same campaign. One streaming pass
/// serves both the drift check and the membership test — no
/// materialized cell list and no double enumeration, whatever the
/// campaign size. Drift errors win over coverage errors: when the
/// registry moved, "missing cell" would misdiagnose the real problem.
pub fn verify_coverage(
    registry: &Registry,
    manifest: &Manifest,
    store: &ResultStore,
) -> Result<(), ScenarioError> {
    let mut planned = 0usize;
    let mut first_missing: Option<String> = None;
    check_drift_observing(registry, manifest, &mut |cell| {
        planned += 1;
        if first_missing.is_none() && !store.contains(&cell.fingerprint) {
            first_missing = Some(format!(
                "merged store is missing planned cell {} ({} {}) — shard {} lost?",
                cell.fingerprint, cell.scenario, cell.params, cell.shard
            ));
        }
    })?;
    if let Some(missing) = first_missing {
        return Err(ScenarioError::Dist(missing));
    }
    if store.len() != planned {
        return Err(ScenarioError::Dist(format!(
            "merged store has {} cells but the manifest plans {planned} — \
             extra cells from an unrelated campaign?",
            store.len(),
        )));
    }
    Ok(())
}

/// Folds a fused replicated store into distribution metrics: each base
/// cell's N raw replicate results collapse into one `expect` fold cell
/// keyed by the base fingerprint, exactly as a single-process
/// full-domain run folds at completion — so after this pass the merged
/// store is byte-identical to the single-process store. Shard runs
/// never fold themselves (a partition sees only the replicates it
/// owns), which is why the fold lives here, after the fuse and after
/// [`verify_coverage`] has proven every raw replicate present. Raw
/// replicate cells are removed unless `keep_replicates`. Returns the
/// number of fold cells produced (0 for an unreplicated manifest).
pub fn fold_replicates(
    registry: &Registry,
    manifest: &Manifest,
    store: &mut ResultStore,
    keep_replicates: bool,
) -> Result<usize, ScenarioError> {
    if manifest.replicates <= 1 {
        return Ok(0);
    }
    let reps = manifest.replicates as usize;
    let scenarios = crate::exec::select_scenarios(registry, &manifest.scenarios)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    // One streaming pass over the planned cells: the replicate axis
    // varies fastest, so each base cell's N replicates arrive
    // consecutively in replicate-index order — the order the fold must
    // consume for byte equivalence with the single-process run. The
    // store is only read during the pass; fold insertions and raw
    // removals are staged and applied afterwards.
    let mut group: Vec<PlannedCell> = Vec::with_capacity(reps);
    let mut folds: Vec<(String, StoredCell)> = Vec::new();
    let mut raw_fps: Vec<String> = Vec::new();
    {
        let store: &ResultStore = store;
        visit_planned_cells(registry, manifest, &mut |cell| {
            group.push(cell);
            if group.len() < reps {
                return Ok(());
            }
            let spec = specs
                .iter()
                .find(|s| s.id == group[0].scenario)
                .expect("planned cell of an unselected scenario");
            let results = group
                .iter()
                .map(|c| {
                    store
                        .get_by_fingerprint(&c.fingerprint)
                        .map(|s| &s.result)
                        .ok_or_else(|| {
                            ScenarioError::Store(format!(
                                "replicate fold: merged store is missing replicate cell {} \
                                 ({} {})",
                                c.fingerprint,
                                c.scenario,
                                c.params.key()
                            ))
                        })
                })
                .collect::<Result<Vec<_>, _>>()?;
            let fold = crate::expect::fold_results(&results)?;
            let (base_params, _) = crate::matrix::split_rep(&group[0].params).ok_or_else(|| {
                ScenarioError::Store(format!(
                    "replicate fold: planned cell `{}` lacks a {} coordinate",
                    group[0].params.key(),
                    crate::matrix::REP_AXIS
                ))
            })?;
            let base_seed = crate::exec::cell_seed(manifest.seed, spec.id, &base_params);
            let base_fp = crate::store::fingerprint_with_content(
                spec.id,
                spec.version,
                spec.content_digest.as_deref(),
                &base_params,
                base_seed,
            );
            folds.push((
                base_fp,
                StoredCell {
                    scenario: spec.id.to_string(),
                    version: spec.version,
                    params_key: base_params.key(),
                    seed: base_seed,
                    fold: true,
                    result: fold,
                },
            ));
            if !keep_replicates {
                raw_fps.extend(group.drain(..).map(|c| c.fingerprint));
            } else {
                group.clear();
            }
            Ok(())
        })?;
    }
    if !group.is_empty() {
        return Err(ScenarioError::Store(format!(
            "replicate fold: {} planned cells left over — not a multiple of {reps} replicates",
            group.len()
        )));
    }
    for fp in &raw_fps {
        store.remove(fp);
    }
    let folded = folds.len();
    for (fp, cell) in folds {
        store.insert_cell(fp, cell);
    }
    Ok(folded)
}

/// One chunk's fate in a work-stealing campaign: the planned unit of
/// work joined with the lease file that records who actually ran it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkLease {
    /// The planned chunk (id, scenario, range, cost, initial shard).
    pub chunk: Chunk,
    /// The shard whose lease file claimed it; `None` = never claimed
    /// (a shard died before reaching it — merge's coverage check will
    /// have reported the missing cells).
    pub holder: Option<u32>,
}

impl ChunkLease {
    /// True when a shard other than the initial lessee won the chunk.
    pub fn stolen(&self) -> bool {
        self.holder
            .is_some_and(|holder| holder != self.chunk.initial_shard)
    }
}

/// One shard's realized balance: what the planner leased to it vs.
/// what it actually won through the lease protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardBalance {
    /// Shard index.
    pub shard: u32,
    /// Chunks of its initial (planned) lease.
    pub leased_chunks: usize,
    /// Lazy cells of that lease.
    pub leased_cells: usize,
    /// Chunks it actually claimed and executed.
    pub won_chunks: usize,
    /// Lazy cells of those chunks.
    pub won_cells: usize,
    /// Of the won chunks, how many were stolen from another shard's
    /// initial lease.
    pub stolen_chunks: usize,
}

/// One merge input's measured cost, from the telemetry sidecar beside
/// its shard store (absent when the shard ran without `--telemetry`).
#[derive(Debug, Clone, PartialEq)]
pub struct InputWall {
    /// The input store, as given to `merge`.
    pub label: String,
    /// Cells with a recorded fresh execution.
    pub executed_cells: usize,
    /// Total measured wall-clock nanoseconds.
    pub wall_ns: Option<f64>,
}

/// The steal-aware merge report: which shard won which chunk (from the
/// lease files) and the realized per-shard wall-clock balance (from the
/// per-shard telemetry sidecars).
#[derive(Debug, Clone, PartialEq)]
pub struct StealReport {
    /// The campaign the lease directory is stamped for.
    pub shards: u32,
    /// Every planned chunk, in chunk-id order, with its lease holder.
    pub chunks: Vec<ChunkLease>,
    /// Per-shard planned-vs-realized balance, indexed by shard.
    pub shards_balance: Vec<ShardBalance>,
    /// Per merge input, the measured cost of what it executed.
    pub inputs: Vec<InputWall>,
}

impl StealReport {
    /// Chunks no shard ever claimed.
    pub fn unclaimed(&self) -> usize {
        self.chunks.iter().filter(|c| c.holder.is_none()).count()
    }

    /// Chunks won by a shard other than their initial lessee.
    pub fn stolen(&self) -> usize {
        self.chunks.iter().filter(|c| c.stolen()).count()
    }
}

/// Builds the steal-aware report of a merged work-stealing campaign:
/// recomputes the deterministic chunk map from the manifest, reads each
/// chunk's lease file for the winning shard, and sums each input
/// store's telemetry sidecar into its realized wall-clock cost.
/// Telemetry is optional per input (`None` = the shard ran without
/// `--telemetry`); the lease directory is not — without leases there is
/// nothing steal-aware to report.
pub fn steal_report(
    registry: &Registry,
    manifest: &Manifest,
    leases: &LeaseDir,
    inputs: &[(String, Option<Telemetry>)],
) -> Result<StealReport, ScenarioError> {
    let chunks = chunk_map(registry, manifest)?;
    let mut leased = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let holder = leases.holder(chunk.id)?;
        leased.push(ChunkLease { chunk, holder });
    }
    let mut balance: Vec<ShardBalance> = (0..manifest.shards)
        .map(|shard| ShardBalance {
            shard,
            ..ShardBalance::default()
        })
        .collect();
    for lease in &leased {
        let planned = &mut balance[lease.chunk.initial_shard as usize];
        planned.leased_chunks += 1;
        planned.leased_cells += lease.chunk.range.len();
        if let Some(holder) = lease.holder {
            let winner = balance.get_mut(holder as usize).ok_or_else(|| {
                ScenarioError::Dist(format!(
                    "lease for chunk {} names shard {holder}, but the manifest plans only {} \
                     shards — stale lease directory?",
                    lease.chunk.id, manifest.shards
                ))
            })?;
            winner.won_chunks += 1;
            winner.won_cells += lease.chunk.range.len();
            if lease.stolen() {
                winner.stolen_chunks += 1;
            }
        }
    }
    let inputs = inputs
        .iter()
        .map(|(label, telemetry)| InputWall {
            label: label.clone(),
            executed_cells: telemetry.as_ref().map_or(0, Telemetry::executed_cells),
            wall_ns: telemetry.as_ref().map(Telemetry::total_wall_ns),
        })
        .collect();
    Ok(StealReport {
        shards: manifest.shards,
        chunks: leased,
        shards_balance: balance,
        inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CellResult, Params};

    fn params(n: u64) -> Params {
        Params::new(vec![("n".into(), n.to_string())])
    }

    fn store_with(cells: &[(u64, f64)]) -> ResultStore {
        let mut s = ResultStore::new();
        for &(n, v) in cells {
            s.insert("s", 1, &params(n), n, CellResult::new(vec![("m", v)]));
        }
        s
    }

    #[test]
    fn disjoint_stores_union() {
        let a = store_with(&[(1, 1.0), (2, 2.0)]);
        let b = store_with(&[(3, 3.0)]);
        let (fused, stats) = merge_stores(&[a, b]).unwrap();
        assert_eq!(fused.len(), 3);
        assert_eq!(
            stats,
            MergeStats {
                cells: 3,
                duplicates: 0
            }
        );
    }

    #[test]
    fn identical_overlap_is_counted_not_fatal() {
        let a = store_with(&[(1, 1.0), (2, 2.0)]);
        let b = store_with(&[(2, 2.0), (3, 3.0)]);
        let (fused, stats) = merge_stores(&[a, b]).unwrap();
        assert_eq!(fused.len(), 3);
        assert_eq!(stats.duplicates, 1);
    }

    #[test]
    fn conflicting_results_abort() {
        let a = store_with(&[(1, 1.0)]);
        let b = store_with(&[(1, 1.5)]);
        let err = merge_stores(&[a, b]).unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(ref m) if m.contains("determinism")));
    }

    #[test]
    fn merge_of_empty_inputs_is_empty() {
        let (fused, stats) = merge_stores(&[]).unwrap();
        assert!(fused.is_empty());
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn steal_report_joins_leases_and_telemetry() {
        use crate::dist;
        use std::time::Duration;
        let registry = Registry::builtin();
        let manifest = dist::plan(
            &registry,
            &["pipeline-domino".into(), "dram-refresh".into()],
            &[],
            42,
            2,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("harness-stealrep-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let leases = LeaseDir::open(&dir, &manifest).unwrap();
        let chunks = chunk_map(&registry, &manifest).unwrap();
        assert!(chunks.len() >= 3, "need room for a steal and a loss");
        // Shard 1 claims everything except the last chunk (simulating a
        // shard death before it): every non-last chunk initially leased
        // to shard 0 counts as stolen.
        for chunk in &chunks[..chunks.len() - 1] {
            assert!(leases.claim(chunk.id, 1).unwrap());
        }
        let mut telemetry = Telemetry::new();
        telemetry.record_fresh("aaaa", "pipeline-domino", Duration::from_millis(2), 1);
        telemetry.record_fresh("bbbb", "dram-refresh", Duration::from_millis(3), 2);
        let inputs = vec![
            ("shard0.json".to_string(), None),
            ("shard1.json".to_string(), Some(telemetry)),
        ];
        let report = steal_report(&registry, &manifest, &leases, &inputs).unwrap();
        assert_eq!(report.chunks.len(), chunks.len());
        assert_eq!(report.unclaimed(), 1);
        assert_eq!(report.chunks.last().unwrap().holder, None);
        let expected_stolen = chunks[..chunks.len() - 1]
            .iter()
            .filter(|c| c.initial_shard != 1)
            .count();
        assert_eq!(report.stolen(), expected_stolen);
        let s1 = report.shards_balance[1];
        assert_eq!(s1.won_chunks, chunks.len() - 1);
        assert_eq!(s1.stolen_chunks, expected_stolen);
        assert_eq!(report.shards_balance[0].won_chunks, 0);
        let leased_total: usize = report.shards_balance.iter().map(|b| b.leased_chunks).sum();
        assert_eq!(leased_total, chunks.len(), "every chunk is leased once");
        assert_eq!(report.inputs[0].wall_ns, None);
        assert_eq!(report.inputs[1].executed_cells, 2);
        assert_eq!(report.inputs[1].wall_ns, Some(5_000_000.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replicated_shards_fold_to_the_single_process_store() {
        use crate::dist::{self, plan_calibrated_with};
        use crate::exec::{run_campaign, ExecConfig};
        use crate::matrix::Filter;
        use crate::registry::Registry;

        let registry = Registry::builtin();
        let select = vec!["pipeline-domino".to_string(), "dram-refresh".to_string()];
        let (manifest, _, _) =
            plan_calibrated_with(&registry, &select, &[], 13, 2, 8, None, None).unwrap();

        let mut shard_stores = Vec::new();
        for index in 0..manifest.shards {
            let mut store = ResultStore::new();
            dist::run_shard(&registry, &manifest, index, 2, &mut store).unwrap();
            shard_stores.push(store);
        }
        let (mut fused, _) = merge_stores(&shard_stores).unwrap();
        verify_coverage(&registry, &manifest, &fused).unwrap();
        let folded = fold_replicates(&registry, &manifest, &mut fused, false).unwrap();
        assert_eq!(folded, 8, "4 + 4 base cells fold");

        let mut single = ResultStore::new();
        run_campaign(
            &registry,
            &select,
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 13,
                replicates: 8,
                keep_replicates: false,
            },
            &mut single,
        )
        .unwrap();
        assert_eq!(
            fused.to_json().pretty(),
            single.to_json().pretty(),
            "merged fold must be byte-identical to the one-process run"
        );
    }

    #[test]
    fn fold_keep_replicates_retains_raws_and_unreplicated_manifests_noop() {
        use crate::dist::{self, plan_calibrated_with};
        use crate::registry::Registry;

        let registry = Registry::builtin();
        let select = vec!["pipeline-domino".to_string()];
        let (manifest, _, _) =
            plan_calibrated_with(&registry, &select, &[], 3, 1, 4, None, None).unwrap();
        let mut store = ResultStore::new();
        dist::run_shard(&registry, &manifest, 0, 1, &mut store).unwrap();
        assert_eq!(store.len(), 16);
        let folded = fold_replicates(&registry, &manifest, &mut store, true).unwrap();
        assert_eq!(folded, 4);
        assert_eq!(store.len(), 20, "raws retained beside the folds");
        assert_eq!(store.iter().filter(|(_, c)| c.fold).count(), 4);

        // replicates == 1: nothing to fold, the store is untouched.
        let (plain, _, _) =
            plan_calibrated_with(&registry, &select, &[], 3, 1, 1, None, None).unwrap();
        let mut plain_store = ResultStore::new();
        dist::run_shard(&registry, &plain, 0, 1, &mut plain_store).unwrap();
        let before = plain_store.to_json().pretty();
        assert_eq!(
            fold_replicates(&registry, &plain, &mut plain_store, false).unwrap(),
            0
        );
        assert_eq!(plain_store.to_json().pretty(), before);
    }
}
