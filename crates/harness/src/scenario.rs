//! The scenario abstraction: what a registered workload must declare
//! and how one matrix cell is evaluated.
//!
//! A [`Scenario`] is one instantiation of the paper's template over a
//! real simulator: its [`ScenarioSpec`] names the system under test and
//! the template's three slots (property, uncertainty, quality measure),
//! and declares a parameter matrix as named [`Axis`] value lists. The
//! executor evaluates the cartesian product of the axes; each cell gets
//! a deterministic seed, and [`Scenario::run`] must be a pure function
//! of `(params, seed)` — that is the contract that makes memoization
//! and thread-count-independent results sound.

use std::fmt;

/// One matrix axis: a parameter name and the values it sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// Parameter name (stable; part of the cell fingerprint).
    pub name: &'static str,
    /// Values, in sweep order.
    pub values: Vec<String>,
}

impl Axis {
    /// An axis from anything displayable.
    pub fn new<T: fmt::Display>(name: &'static str, values: impl IntoIterator<Item = T>) -> Axis {
        Axis {
            name,
            values: values.into_iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// The declarative description of a scenario: identity, template slots
/// and the parameter matrix.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable id (lower-kebab-case; part of every cell fingerprint).
    pub id: &'static str,
    /// Implementation version; part of every cell fingerprint. Bump it
    /// whenever the scenario's semantics change (workload shape,
    /// constants, metric definitions), so persisted stores recompute
    /// instead of silently serving results of the old implementation.
    pub version: u32,
    /// Human-readable title.
    pub title: &'static str,
    /// The workspace crate providing the system under test.
    pub source_crate: &'static str,
    /// Template slot: the property to be predicted.
    pub property: &'static str,
    /// Template slot: the sources of uncertainty.
    pub uncertainty: &'static str,
    /// Template slot: the quality measure.
    pub quality: &'static str,
    /// The `predictability_core::catalog` row this scenario evidences,
    /// if it corresponds to one of the paper's Table 1/2 rows.
    pub catalog_id: Option<&'static str>,
    /// Digest of external *content* the scenario's results depend on
    /// beyond its id, version and axes — e.g. the generated-program
    /// corpus a `gen/*` scenario sweeps. The digest is part of every
    /// cell fingerprint, so content drift (a codegen change that emits
    /// different programs for the same seeds) invalidates memoized
    /// results and trips shard-manifest drift detection exactly like a
    /// version bump. `None` for scenarios whose workload is fully
    /// described by their axes.
    pub content_digest: Option<String>,
    /// The parameter matrix.
    pub axes: Vec<Axis>,
    /// The metric the evidence summary leads with.
    pub headline_metric: &'static str,
    /// Whether smaller headline values mean more predictable.
    pub smaller_is_better: bool,
}

impl ScenarioSpec {
    /// Number of cells in the full (unfiltered) matrix.
    pub fn matrix_size(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }
}

/// The coordinates of one cell: `(axis, value)` pairs in axis order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Params(Vec<(String, String)>);

impl Params {
    /// Builds from `(axis, value)` pairs (kept in the given order).
    pub fn new(pairs: Vec<(String, String)>) -> Params {
        Params(pairs)
    }

    /// The `(axis, value)` pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Looks up one axis value.
    pub fn get(&self, axis: &str) -> Result<&str, ScenarioError> {
        self.0
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| ScenarioError::MissingParam(axis.to_string()))
    }

    /// Looks up and parses an integer axis value.
    pub fn get_u64(&self, axis: &str) -> Result<u64, ScenarioError> {
        let raw = self.get(axis)?;
        raw.parse().map_err(|_| ScenarioError::BadParam {
            axis: axis.to_string(),
            value: raw.to_string(),
        })
    }

    /// Looks up and parses a float axis value.
    pub fn get_f64(&self, axis: &str) -> Result<f64, ScenarioError> {
        let raw = self.get(axis)?;
        raw.parse().map_err(|_| ScenarioError::BadParam {
            axis: axis.to_string(),
            value: raw.to_string(),
        })
    }

    /// The canonical `axis=value,axis=value` key — stable across runs,
    /// used in fingerprints, filters and reports.
    pub fn key(&self) -> String {
        self.0
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// The measured outcome of one cell: named metrics in declaration
/// order. Metrics that do not exist for a cell (e.g. `fill` for MRU,
/// which provably never fills) are simply omitted.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// `(metric, value)` pairs.
    pub metrics: Vec<(String, f64)>,
}

impl CellResult {
    /// Builds from `(metric, value)` pairs.
    pub fn new(metrics: Vec<(&str, f64)>) -> CellResult {
        CellResult {
            metrics: metrics
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Looks up one metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Errors surfaced by scenario evaluation or campaign plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A cell was asked for an axis its matrix does not declare.
    MissingParam(String),
    /// An axis value failed to parse as the expected type.
    BadParam {
        /// Axis name.
        axis: String,
        /// Offending value.
        value: String,
    },
    /// No registered scenario has the requested id.
    UnknownScenario(String),
    /// A filter clause names an axis no selected scenario declares
    /// (almost always a typo; a vacuous clause would otherwise silently
    /// run the full unfiltered campaign).
    UnknownFilterAxis(String),
    /// Reading or writing the result store failed.
    Store(String),
    /// Distributed-campaign plumbing failed: a bad shard spec, a
    /// manifest that no longer matches the registry, or shard stores
    /// that disagree on a fingerprint (a determinism violation).
    Dist(String),
    /// A campaign run was cooperatively cancelled (see
    /// `exec::ExecHooks::cancel`): every cell completed before the
    /// cancel was persisted, the remainder never ran. Rerunning the
    /// same campaign resumes from the persisted cells.
    Cancelled,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::MissingParam(axis) => write!(f, "missing matrix axis `{axis}`"),
            ScenarioError::BadParam { axis, value } => {
                write!(f, "axis `{axis}` value `{value}` failed to parse")
            }
            ScenarioError::UnknownScenario(id) => write!(f, "unknown scenario `{id}`"),
            ScenarioError::UnknownFilterAxis(axis) => {
                write!(
                    f,
                    "filter axis `{axis}` not declared by any selected scenario"
                )
            }
            ScenarioError::Store(msg) => write!(f, "result store error: {msg}"),
            ScenarioError::Dist(msg) => write!(f, "distributed campaign error: {msg}"),
            ScenarioError::Cancelled => write!(f, "campaign cancelled before completion"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A registered workload.
///
/// Implementations must be deterministic: `run(params, seed)` must
/// return the same [`CellResult`] for the same arguments, regardless of
/// thread interleaving or prior calls. Anything stochastic must draw
/// from an RNG seeded with `seed` only.
pub trait Scenario: Send + Sync {
    /// The scenario's declarative description.
    fn spec(&self) -> ScenarioSpec;

    /// Evaluates one matrix cell.
    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_key_is_canonical() {
        let p = Params::new(vec![
            ("policy".into(), "lru".into()),
            ("assoc".into(), "4".into()),
        ]);
        assert_eq!(p.key(), "policy=lru,assoc=4");
        assert_eq!(p.get("policy").unwrap(), "lru");
        assert_eq!(p.get_u64("assoc").unwrap(), 4);
        assert!(matches!(
            p.get("missing"),
            Err(ScenarioError::MissingParam(_))
        ));
        assert!(matches!(
            p.get_u64("policy"),
            Err(ScenarioError::BadParam { .. })
        ));
    }

    #[test]
    fn matrix_size_is_product_of_axes() {
        let spec = ScenarioSpec {
            id: "t",
            version: 1,
            title: "t",
            source_crate: "t",
            property: "t",
            uncertainty: "t",
            quality: "t",
            catalog_id: None,
            content_digest: None,
            axes: vec![Axis::new("a", [1, 2, 3]), Axis::new("b", ["x", "y"])],
            headline_metric: "m",
            smaller_is_better: true,
        };
        assert_eq!(spec.matrix_size(), 6);
    }

    #[test]
    fn cell_result_lookup() {
        let r = CellResult::new(vec![("evict", 4.0), ("fill", 8.0)]);
        assert_eq!(r.metric("fill"), Some(8.0));
        assert_eq!(r.metric("nope"), None);
    }
}
