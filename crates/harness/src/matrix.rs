//! Lazy matrix enumeration and cell filtering.
//!
//! A scenario's axes span a cartesian product; [`CellIter`] enumerates
//! it in deterministic row-major order (first axis slowest), which
//! fixes cell indices independently of thread count. The iterator is
//! *lazy* and random-access — any cell can be decoded from its row-major
//! index in constant memory — so planning and sharding can sweep
//! matrices of millions of cells without ever materializing them;
//! [`expand`] remains as the collecting convenience. A [`Filter`]
//! restricts a campaign to matching cells with `axis=value` clauses —
//! several values for the same axis union, clauses across different
//! axes intersect.

use crate::scenario::{Axis, Params};

/// A lazy, random-access enumeration of the axes' cartesian product in
/// row-major order (first axis slowest) — exactly the sequence
/// [`expand`] materializes, in constant memory. An empty axis list
/// yields the single empty cell.
#[derive(Debug, Clone)]
pub struct CellIter<'a> {
    axes: &'a [Axis],
    next: usize,
    total: usize,
}

impl<'a> CellIter<'a> {
    /// An iterator over the axes' full product.
    pub fn new(axes: &'a [Axis]) -> CellIter<'a> {
        CellIter {
            axes,
            next: 0,
            // The empty product is 1 (the single empty cell), matching
            // `ScenarioSpec::matrix_size`; an axis with no values
            // yields an empty product.
            total: axes.iter().map(|a| a.values.len()).product(),
        }
    }

    /// Total number of cells in the full product (independent of how
    /// far this iterator has advanced).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Decodes the cell at a row-major index without enumerating its
    /// predecessors — the random access that lets shard workers and
    /// work-stealing leases jump straight to their range.
    pub fn cell_at(&self, index: usize) -> Option<Params> {
        if index >= self.total {
            return None;
        }
        let mut pairs = Vec::with_capacity(self.axes.len());
        let mut rest = index;
        for axis in self.axes.iter().rev() {
            let k = axis.values.len();
            pairs.push((axis.name.to_string(), axis.values[rest % k].clone()));
            rest /= k;
        }
        pairs.reverse();
        Some(Params::new(pairs))
    }
}

impl Iterator for CellIter<'_> {
    type Item = Params;

    fn next(&mut self) -> Option<Params> {
        let cell = self.cell_at(self.next)?;
        self.next += 1;
        Some(cell)
    }

    /// Constant-time skip: decodes directly at the target index instead
    /// of enumerating the skipped cells.
    fn nth(&mut self, n: usize) -> Option<Params> {
        self.next = self.next.saturating_add(n);
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next.min(self.total);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for CellIter<'_> {}

/// Materializes every cell of the axes' cartesian product, first axis
/// varying slowest (a collecting wrapper over [`CellIter`]).
pub fn expand(axes: &[Axis]) -> Vec<Params> {
    CellIter::new(axes).collect()
}

/// The reserved replicate-axis name: a campaign run with
/// `--replicates N` multiplies every scenario matrix by this axis
/// (fastest-varying, values `0..N`). Scenarios may not declare an axis
/// with this name — the executor rejects the collision up front.
pub const REP_AXIS: &str = "rep";

/// Extends a base cell's params with its replicate index: the
/// [`REP_AXIS`] pair is appended after the declared axes, so replicate
/// cells sort and fingerprint as ordinary cells of an extended matrix.
pub fn with_rep(params: &Params, rep: u32) -> Params {
    let mut pairs = params.pairs().to_vec();
    pairs.push((REP_AXIS.to_string(), rep.to_string()));
    Params::new(pairs)
}

/// Splits a replicate cell's params back into `(base params, rep)`;
/// `None` when the trailing pair is not a well-formed replicate index.
pub fn split_rep(params: &Params) -> Option<(Params, u32)> {
    let pairs = params.pairs();
    let (last, base) = pairs.split_last()?;
    if last.0 != REP_AXIS {
        return None;
    }
    let rep = last.1.parse::<u32>().ok()?;
    Some((Params::new(base.to_vec()), rep))
}

/// An `axis=value` conjunction-of-disjunctions filter.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    clauses: Vec<(String, String)>,
}

impl Filter {
    /// The match-everything filter.
    pub fn all() -> Filter {
        Filter::default()
    }

    /// Parses clauses of the form `axis=value`.
    pub fn parse(clauses: &[String]) -> Result<Filter, String> {
        let mut parsed = Vec::with_capacity(clauses.len());
        for clause in clauses {
            match clause.split_once('=') {
                Some((axis, value)) if !axis.is_empty() && !value.is_empty() => {
                    parsed.push((axis.to_string(), value.to_string()));
                }
                _ => return Err(format!("bad filter `{clause}` (expected axis=value)")),
            }
        }
        Ok(Filter { clauses: parsed })
    }

    /// Adds one clause.
    pub fn with(mut self, axis: &str, value: &str) -> Filter {
        self.clauses.push((axis.to_string(), value.to_string()));
        self
    }

    /// True if the cell satisfies every constrained axis *it has*.
    /// Clauses naming axes the cell lacks are vacuously satisfied, so a
    /// campaign mixing scenarios can constrain one scenario's axis
    /// (`assoc=2`) without silencing every other scenario.
    pub fn matches(&self, params: &Params) -> bool {
        let mut constrained_axes: Vec<&str> =
            self.clauses.iter().map(|(a, _)| a.as_str()).collect();
        constrained_axes.sort_unstable();
        constrained_axes.dedup();
        constrained_axes.iter().all(|axis| {
            let Ok(cell_value) = params.get(axis) else {
                return true;
            };
            self.clauses
                .iter()
                .filter(|(a, _)| a == axis)
                .any(|(_, v)| cell_value == v)
        })
    }

    /// True if no clause constrains anything.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The axis names the clauses constrain (with duplicates).
    pub fn constrained_axes(&self) -> impl Iterator<Item = &str> {
        self.clauses.iter().map(|(a, _)| a.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Axis;

    fn axes() -> Vec<Axis> {
        vec![Axis::new("a", [1, 2]), Axis::new("b", ["x", "y", "z"])]
    }

    #[test]
    fn expansion_is_row_major_and_complete() {
        let cells = expand(&axes());
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].key(), "a=1,b=x");
        assert_eq!(cells[1].key(), "a=1,b=y");
        assert_eq!(cells[5].key(), "a=2,b=z");
    }

    #[test]
    fn empty_axes_give_one_cell() {
        let cells = expand(&[]);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].key(), "");
    }

    #[test]
    fn filter_same_axis_unions_other_axes_intersect() {
        let cells = expand(&axes());
        let f = Filter::all().with("b", "x").with("b", "z").with("a", "2");
        let kept: Vec<String> = cells
            .iter()
            .filter(|c| f.matches(c))
            .map(Params::key)
            .collect();
        assert_eq!(kept, vec!["a=2,b=x", "a=2,b=z"]);
    }

    #[test]
    fn filter_on_absent_axis_is_vacuous() {
        let cells = expand(&axes());
        let f = Filter::all().with("policy", "lru");
        assert!(cells.iter().all(|c| f.matches(c)));
        // But combined with a present axis, that axis still constrains.
        let f = f.with("a", "1");
        assert_eq!(cells.iter().filter(|c| f.matches(c)).count(), 3);
    }

    #[test]
    fn cell_iter_matches_expand_and_random_access() {
        let axes = axes();
        let cells = expand(&axes);
        let lazy: Vec<Params> = CellIter::new(&axes).collect();
        assert_eq!(lazy, cells, "lazy enumeration must equal expand");
        let iter = CellIter::new(&axes);
        assert_eq!(iter.total(), cells.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(iter.cell_at(i).as_ref(), Some(cell), "cell_at({i})");
        }
        assert_eq!(iter.cell_at(cells.len()), None, "out of range");
    }

    #[test]
    fn cell_iter_nth_jumps_without_enumerating() {
        let axes = axes();
        let cells = expand(&axes);
        let mut iter = CellIter::new(&axes);
        assert_eq!(iter.nth(4).as_ref(), Some(&cells[4]));
        assert_eq!(iter.next().as_ref(), Some(&cells[5]));
        assert_eq!(iter.next(), None);
        // Saturating skip past the end terminates cleanly.
        assert_eq!(CellIter::new(&axes).nth(usize::MAX), None);
    }

    #[test]
    fn cell_iter_empty_axes_and_empty_axis_values() {
        let iter = CellIter::new(&[]);
        assert_eq!(iter.total(), 1, "empty product is the single empty cell");
        assert_eq!(iter.cell_at(0).unwrap().key(), "");
        let empty_axis = [Axis::new("a", Vec::<u64>::new())];
        assert_eq!(CellIter::new(&empty_axis).total(), 0);
        assert_eq!(CellIter::new(&empty_axis).next(), None);
    }

    #[test]
    fn cell_iter_size_hint_is_exact() {
        let axes = axes();
        let mut iter = CellIter::new(&axes);
        assert_eq!(iter.size_hint(), (6, Some(6)));
        iter.next();
        assert_eq!(iter.len(), 5);
    }

    #[test]
    fn rep_extension_round_trips() {
        let base = Params::new(vec![("a".into(), "1".into()), ("b".into(), "x".into())]);
        let extended = with_rep(&base, 7);
        assert_eq!(extended.key(), "a=1,b=x,rep=7");
        let (back, rep) = split_rep(&extended).unwrap();
        assert_eq!((back.key().as_str(), rep), ("a=1,b=x", 7));
        // The empty base matrix still extends cleanly.
        let lone = with_rep(&Params::new(vec![]), 0);
        assert_eq!(lone.key(), "rep=0");
        assert_eq!(split_rep(&lone).unwrap().1, 0);
        // Non-replicate cells split to None.
        assert!(split_rep(&base).is_none());
        assert!(split_rep(&Params::new(vec![])).is_none());
    }

    #[test]
    fn parse_accepts_good_and_rejects_bad() {
        assert!(Filter::parse(&["a=1".into(), "b=x".into()]).is_ok());
        assert!(Filter::parse(&["justanaxis".into()]).is_err());
        assert!(Filter::parse(&["=v".into()]).is_err());
    }
}
