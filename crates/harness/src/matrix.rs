//! Matrix expansion and cell filtering.
//!
//! A scenario's axes span a cartesian product; [`expand`] enumerates it
//! in deterministic row-major order (first axis slowest), which fixes
//! cell indices independently of thread count. A [`Filter`] restricts a
//! campaign to matching cells with `axis=value` clauses — several
//! values for the same axis union, clauses across different axes
//! intersect.

use crate::scenario::{Axis, Params};

/// Enumerates every cell of the axes' cartesian product, first axis
/// varying slowest. An empty axis list yields the single empty cell.
pub fn expand(axes: &[Axis]) -> Vec<Params> {
    let mut cells: Vec<Vec<(String, String)>> = vec![Vec::new()];
    for axis in axes {
        let mut next = Vec::with_capacity(cells.len() * axis.values.len());
        for prefix in &cells {
            for value in &axis.values {
                let mut cell = prefix.clone();
                cell.push((axis.name.to_string(), value.clone()));
                next.push(cell);
            }
        }
        cells = next;
    }
    cells.into_iter().map(Params::new).collect()
}

/// An `axis=value` conjunction-of-disjunctions filter.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    clauses: Vec<(String, String)>,
}

impl Filter {
    /// The match-everything filter.
    pub fn all() -> Filter {
        Filter::default()
    }

    /// Parses clauses of the form `axis=value`.
    pub fn parse(clauses: &[String]) -> Result<Filter, String> {
        let mut parsed = Vec::with_capacity(clauses.len());
        for clause in clauses {
            match clause.split_once('=') {
                Some((axis, value)) if !axis.is_empty() && !value.is_empty() => {
                    parsed.push((axis.to_string(), value.to_string()));
                }
                _ => return Err(format!("bad filter `{clause}` (expected axis=value)")),
            }
        }
        Ok(Filter { clauses: parsed })
    }

    /// Adds one clause.
    pub fn with(mut self, axis: &str, value: &str) -> Filter {
        self.clauses.push((axis.to_string(), value.to_string()));
        self
    }

    /// True if the cell satisfies every constrained axis *it has*.
    /// Clauses naming axes the cell lacks are vacuously satisfied, so a
    /// campaign mixing scenarios can constrain one scenario's axis
    /// (`assoc=2`) without silencing every other scenario.
    pub fn matches(&self, params: &Params) -> bool {
        let mut constrained_axes: Vec<&str> =
            self.clauses.iter().map(|(a, _)| a.as_str()).collect();
        constrained_axes.sort_unstable();
        constrained_axes.dedup();
        constrained_axes.iter().all(|axis| {
            let Ok(cell_value) = params.get(axis) else {
                return true;
            };
            self.clauses
                .iter()
                .filter(|(a, _)| a == axis)
                .any(|(_, v)| cell_value == v)
        })
    }

    /// True if no clause constrains anything.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The axis names the clauses constrain (with duplicates).
    pub fn constrained_axes(&self) -> impl Iterator<Item = &str> {
        self.clauses.iter().map(|(a, _)| a.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Axis;

    fn axes() -> Vec<Axis> {
        vec![Axis::new("a", [1, 2]), Axis::new("b", ["x", "y", "z"])]
    }

    #[test]
    fn expansion_is_row_major_and_complete() {
        let cells = expand(&axes());
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].key(), "a=1,b=x");
        assert_eq!(cells[1].key(), "a=1,b=y");
        assert_eq!(cells[5].key(), "a=2,b=z");
    }

    #[test]
    fn empty_axes_give_one_cell() {
        let cells = expand(&[]);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].key(), "");
    }

    #[test]
    fn filter_same_axis_unions_other_axes_intersect() {
        let cells = expand(&axes());
        let f = Filter::all().with("b", "x").with("b", "z").with("a", "2");
        let kept: Vec<String> = cells
            .iter()
            .filter(|c| f.matches(c))
            .map(Params::key)
            .collect();
        assert_eq!(kept, vec!["a=2,b=x", "a=2,b=z"]);
    }

    #[test]
    fn filter_on_absent_axis_is_vacuous() {
        let cells = expand(&axes());
        let f = Filter::all().with("policy", "lru");
        assert!(cells.iter().all(|c| f.matches(c)));
        // But combined with a present axis, that axis still constrains.
        let f = f.with("a", "1");
        assert_eq!(cells.iter().filter(|c| f.matches(c)).count(), 3);
    }

    #[test]
    fn parse_accepts_good_and_rejects_bad() {
        assert!(Filter::parse(&["a=1".into(), "b=x".into()]).is_ok());
        assert!(Filter::parse(&["justanaxis".into()]).is_err());
        assert!(Filter::parse(&["=v".into()]).is_err());
    }
}
