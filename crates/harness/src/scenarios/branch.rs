//! Branch-prediction scenario (`branch-pred`): WCET-oriented static
//! hints versus a dynamic predictor with unknown initial state
//! (Table 1, row 1).

use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use branch_pred::predictors::branch_stream;
use branch_pred::wcet_oriented::misprediction_bounds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinyisa::exec::Machine;
use tinyisa::kernels;
use tinyisa::reg::Reg;

/// Compares the sound misprediction bounds: the WCET-oriented static
/// assignment yields a small exact bound, while any sound analysis of
/// a 2-bit dynamic predictor with unknown initial table state must
/// assume far more.
pub struct BranchMispredict;

impl Scenario for BranchMispredict {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "branch-mispredict",
            version: 1,
            title: "Static WCET-oriented vs. dynamic branch prediction bounds",
            source_crate: "branch-pred",
            property: "number of branch mispredictions",
            uncertainty: "initial predictor state; analysis imprecision",
            quality: "statically computed bound on mispredictions",
            catalog_id: Some("branch-static"),
            content_digest: None,
            axes: vec![
                Axis::new("kernel", ["popcount", "linear_search"]),
                Axis::new("inputs", [8u64, 24]),
            ],
            headline_metric: "static_bound",
            smaller_is_better: true,
        }
    }

    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
        let (kernel, mem): (_, Vec<(u32, i64)>) = match params.get("kernel")? {
            "popcount" => (kernels::popcount_branchy(12), Vec::new()),
            "linear_search" => (
                kernels::linear_search(8, 256),
                (0..8).map(|i| (256 + i, (i as i64) * 2)).collect(),
            ),
            other => {
                return Err(ScenarioError::BadParam {
                    axis: "kernel".to_string(),
                    value: other.to_string(),
                })
            }
        };
        let n_inputs = params.get_u64("inputs")?;
        let machine = Machine::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let streams: Vec<Vec<(u32, u32, bool)>> = (0..n_inputs)
            .map(|_| {
                let input = rng.random_range(0..4096i64);
                let regs: Vec<(Reg, i64)> = kernel.input_regs.iter().map(|&r| (r, input)).collect();
                let run = machine
                    .run_traced_with(&kernel.program, &regs, &mem)
                    .expect("kernel must terminate");
                branch_stream(&run.trace)
            })
            .collect();
        let bounds = misprediction_bounds(&streams);
        Ok(CellResult::new(vec![
            ("static_bound", bounds.static_bound as f64),
            (
                "dynamic_unknown_init_bound",
                bounds.dynamic_unknown_init_bound as f64,
            ),
            ("dynamic_known_init", bounds.dynamic_known_init as f64),
            (
                "static_advantage",
                bounds.dynamic_unknown_init_bound as f64 - bounds.static_bound as f64,
            ),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_bound_dominates_dynamic_unknown_init() {
        let p = Params::new(vec![
            ("kernel".into(), "popcount".into()),
            ("inputs".into(), "8".into()),
        ]);
        let r = BranchMispredict.run(&p, 11).unwrap();
        assert!(
            r.metric("static_bound").unwrap() <= r.metric("dynamic_unknown_init_bound").unwrap()
        );
        assert!(r.metric("static_advantage").unwrap() >= 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Params::new(vec![
            ("kernel".into(), "linear_search".into()),
            ("inputs".into(), "8".into()),
        ]);
        assert_eq!(
            BranchMispredict.run(&p, 4).unwrap(),
            BranchMispredict.run(&p, 4).unwrap()
        );
    }
}
