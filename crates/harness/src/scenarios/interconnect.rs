//! Shared-bus composability scenario (`interconnect-sim`): the CoMPSoC
//! property measured across arbiters (Table 1, row 4).

use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use interconnect_sim::bus::{simulate_bus, worst_latency, Arbiter, BusRequest};
use interconnect_sim::composability::bus_composability_gap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MASTERS: usize = 4;
const TRANSFER: u64 = 2;

/// How much does application 0's worst bus latency move when co-runner
/// traffic appears? TDM arbitration achieves a gap of zero —
/// composability — while every work-conserving arbiter leaks
/// interference.
pub struct BusArbitration;

impl Scenario for BusArbitration {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "bus-arbitration",
            version: 1,
            title: "Shared bus: composability gap across arbiters",
            source_crate: "interconnect-sim",
            property: "latency of application 0's bus transactions",
            uncertainty: "concurrent execution of unknown other applications",
            quality: "worst latency shift caused by co-runners (cycles)",
            catalog_id: Some("compsoc"),
            content_digest: None,
            axes: vec![
                Axis::new("arbiter", Arbiter::ALL.iter().map(|a| a.name().to_string())),
                Axis::new("co_masters", [1u64, 3]),
            ],
            headline_metric: "gap",
            smaller_is_better: true,
        }
    }

    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
        let arbiter_name = params.get("arbiter")?;
        let arbiter = Arbiter::by_name(arbiter_name).ok_or_else(|| ScenarioError::BadParam {
            axis: "arbiter".to_string(),
            value: arbiter_name.to_string(),
        })?;
        let co_masters = params.get_u64("co_masters")? as usize;
        let app0: Vec<BusRequest> = (0..10u64)
            .map(|k| BusRequest {
                master: 0,
                arrival: k * 12,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut co = Vec::new();
        for master in 1..=co_masters.min(MASTERS - 1) {
            for _ in 0..50u64 {
                co.push(BusRequest {
                    master,
                    arrival: rng.random_range(0..60),
                });
            }
        }
        let gap = bus_composability_gap(arbiter, MASTERS, TRANSFER, &app0, &co);
        let alone = simulate_bus(arbiter, MASTERS, TRANSFER, &app0);
        let worst_alone = worst_latency(&alone, 0).expect("app 0 issued requests");
        Ok(CellResult::new(vec![
            ("gap", gap as f64),
            ("worst_alone", worst_alone as f64),
            ("composable", f64::from(u8::from(gap == 0))),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(arbiter: &str, co: u64) -> Params {
        Params::new(vec![
            ("arbiter".into(), arbiter.into()),
            ("co_masters".into(), co.to_string()),
        ])
    }

    #[test]
    fn tdma_is_composable() {
        let r = BusArbitration.run(&cell("tdma", 3), 5).unwrap();
        assert_eq!(r.metric("gap"), Some(0.0));
        assert_eq!(r.metric("composable"), Some(1.0));
    }

    #[test]
    fn fcfs_leaks_interference() {
        let r = BusArbitration.run(&cell("fcfs", 3), 5).unwrap();
        assert!(r.metric("gap").unwrap() > 0.0);
    }

    #[test]
    fn unknown_arbiter_rejected() {
        assert!(matches!(
            BusArbitration.run(&cell("lottery", 1), 0),
            Err(ScenarioError::BadParam { .. })
        ));
    }
}
