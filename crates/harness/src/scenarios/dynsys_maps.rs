//! Dynamical-systems scenario (`dynsys`): Bernardes-style prediction
//! horizons under per-step δ-perturbation (Section 4 of the paper).

use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use dynsys::{horizon, Contraction, Logistic, Translation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPSILON: f64 = 0.05;
const MAX_STEPS: usize = 200;

/// How many steps ahead can an optimal interval analysis predict the
/// orbit within tolerance ε? Chaotic maps lose the orbit in a handful
/// of steps; isometries degrade linearly; contractions never exceed ε.
pub struct DynsysHorizon;

impl Scenario for DynsysHorizon {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "dynsys-horizon",
            version: 1,
            title: "Dynamical systems: prediction horizon under perturbation",
            source_crate: "dynsys",
            property: "the orbit of the system",
            uncertainty: "δ-perturbation of every step",
            quality: "steps until worst-case deviation exceeds ε",
            catalog_id: None,
            content_digest: None,
            axes: vec![
                Axis::new("map", ["logistic", "translation", "contraction"]),
                Axis::new("delta", ["1e-6", "1e-3"]),
            ],
            headline_metric: "horizon",
            smaller_is_better: false,
        }
    }

    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
        let delta = params.get_f64("delta")?;
        let mut rng = StdRng::seed_from_u64(seed);
        // A generic start point away from fixed points of all three maps.
        let a = 0.1 + (rng.random_range(0..=800u64) as f64) / 1000.0;
        let h = match params.get("map")? {
            "logistic" => horizon(&Logistic { r: 4.0 }, a, delta, EPSILON, MAX_STEPS),
            "translation" => horizon(&Translation { alpha: 0.137 }, a, delta, EPSILON, MAX_STEPS),
            "contraction" => horizon(&Contraction { c: 0.5 }, a, delta, EPSILON, MAX_STEPS),
            other => {
                return Err(ScenarioError::BadParam {
                    axis: "map".to_string(),
                    value: other.to_string(),
                })
            }
        };
        let mut metrics = vec![(
            "predictable_at_max_steps".to_string(),
            f64::from(u8::from(h.is_none())),
        )];
        if let Some(steps) = h {
            metrics.insert(0, ("horizon".to_string(), steps as f64));
        } else {
            metrics.insert(0, ("horizon".to_string(), MAX_STEPS as f64));
        }
        Ok(CellResult { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(map: &str, delta: &str) -> Params {
        Params::new(vec![
            ("map".into(), map.into()),
            ("delta".into(), delta.into()),
        ])
    }

    #[test]
    fn chaos_loses_the_orbit_fast() {
        let r = DynsysHorizon.run(&cell("logistic", "1e-3"), 2).unwrap();
        assert!(r.metric("horizon").unwrap() < 30.0);
        assert_eq!(r.metric("predictable_at_max_steps"), Some(0.0));
    }

    #[test]
    fn contraction_stays_predictable() {
        let r = DynsysHorizon.run(&cell("contraction", "1e-3"), 2).unwrap();
        assert_eq!(r.metric("predictable_at_max_steps"), Some(1.0));
    }

    #[test]
    fn smaller_delta_never_shortens_the_horizon() {
        for map in ["logistic", "translation"] {
            let coarse = DynsysHorizon.run(&cell(map, "1e-3"), 7).unwrap();
            let fine = DynsysHorizon.run(&cell(map, "1e-6"), 7).unwrap();
            assert!(fine.metric("horizon").unwrap() >= coarse.metric("horizon").unwrap());
        }
    }
}
