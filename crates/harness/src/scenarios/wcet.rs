//! WCET bound-tightness scenario (`wcet-analysis`): the Figure 1
//! picture `LB ≤ observed ≤ UB` quantified per kernel and memory model.

use super::kernel_by_name;
use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use mem_hierarchy::cache::{lru_cache, CacheConfig};
use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
use pipeline_sim::latency::{CachedMem, PerfectMem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinyisa::exec::Machine;
use tinyisa::reg::Reg;
use wcet_analysis::{bounds, WcetConfig};

const HIT: u64 = 1;
const MISS: u64 = 10;
const WARMUP_MAX: u64 = 3;

/// Static LB/UB from `wcet-analysis` against observed in-order
/// execution times over a `(warmup × seeded-input)` uncertainty sweep:
/// soundness (every observation enclosed) and tightness (how much of
/// the bound the worst observation reaches).
pub struct WcetTightness;

impl Scenario for WcetTightness {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "wcet-tightness",
            version: 1,
            title: "WCET analysis: bound soundness and tightness",
            source_crate: "wcet-analysis",
            property: "execution time of whole programs",
            uncertainty: "pipeline warmup state and program input",
            quality: "UB tightness (worst observed / UB) with soundness check",
            catalog_id: None,
            content_digest: None,
            axes: vec![
                Axis::new("kernel", ["sum_loop", "linear_search", "vector_max"]),
                Axis::new("memory", ["perfect", "cached"]),
            ],
            headline_metric: "tightness",
            smaller_is_better: false,
        }
    }

    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
        let kernel = kernel_by_name(params.get("kernel")?)?;
        let memory = params.get("memory")?;
        let config = match memory {
            "perfect" => WcetConfig {
                mem_worst: HIT,
                mem_best: HIT,
                ..WcetConfig::default()
            },
            "cached" => WcetConfig {
                mem_worst: MISS,
                mem_best: HIT,
                ..WcetConfig::default()
            },
            other => {
                return Err(ScenarioError::BadParam {
                    axis: "memory".to_string(),
                    value: other.to_string(),
                })
            }
        };
        let b = bounds(&kernel.program, &config);

        let machine = Machine::default();
        let pipeline = InOrderPipeline::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut observed: Vec<u64> = Vec::new();
        let mut sound = true;
        for _ in 0..5 {
            let input: i64 = rng.random_range(0..24);
            let regs: Vec<(Reg, i64)> = kernel.input_regs.iter().map(|&r| (r, input)).collect();
            let mem_init: Vec<(u32, i64)> = kernel
                .input_mem
                .map(|(base, len)| {
                    (0..len)
                        .map(|i| (base + i, ((i as i64) * 7) % 23))
                        .collect()
                })
                .unwrap_or_default();
            let run = machine
                .run_traced_with(&kernel.program, &regs, &mem_init)
                .expect("kernel must terminate");
            for warmup in 0..=WARMUP_MAX {
                let state = InOrderState { warmup };
                let t = match memory {
                    "perfect" => {
                        let mut mem: PerfectMem = PerfectMem { latency: HIT };
                        pipeline.run(&run.trace, state, &mut mem, None)
                    }
                    _ => {
                        let mut mem: CachedMem<_> = CachedMem {
                            cache: lru_cache(CacheConfig::new(4, 2, 8)),
                            hit_latency: HIT,
                            miss_latency: MISS,
                        };
                        pipeline.run(&run.trace, state, &mut mem, None)
                    }
                };
                // The warmup is part of Q, not the program: the static UB
                // covers the program, so enclosure is `ub + warmup`.
                sound &= b.lb <= t && t <= b.ub + warmup;
                observed.push(t);
            }
        }
        let obs_min = *observed.iter().min().expect("sweep is non-empty");
        let obs_max = *observed.iter().max().expect("sweep is non-empty");
        Ok(CellResult::new(vec![
            ("lb", b.lb as f64),
            ("ub", b.ub as f64),
            ("obs_min", obs_min as f64),
            ("obs_max", obs_max as f64),
            ("tightness", obs_max as f64 / b.ub as f64),
            ("sound", f64::from(u8::from(sound))),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_sound_on_every_cell() {
        for kernel in ["sum_loop", "linear_search", "vector_max"] {
            for memory in ["perfect", "cached"] {
                let p = Params::new(vec![
                    ("kernel".into(), kernel.into()),
                    ("memory".into(), memory.into()),
                ]);
                let r = WcetTightness.run(&p, 13).unwrap();
                assert_eq!(r.metric("sound"), Some(1.0), "{kernel}/{memory}");
                assert!(r.metric("tightness").unwrap() <= 1.0 + 1e-12);
            }
        }
    }
}
