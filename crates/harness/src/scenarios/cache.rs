//! Cache replacement-policy predictability (`mem-hierarchy`).

use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use mem_hierarchy::metrics::compute_metrics_by_name;

/// Reineke et al.'s evict/fill metrics across replacement policies and
/// associativities — the paper's Section 4 exemplar of an *inherent*
/// predictability metric, and the formal basis of its Table 1
/// recommendation to prefer LRU.
pub struct CacheEvictFill;

impl Scenario for CacheEvictFill {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "cache-evict-fill",
            version: 1,
            title: "Cache replacement policies: evict/fill metrics",
            source_crate: "mem-hierarchy",
            property: "cache contents knowable by any analysis",
            uncertainty: "initial cache state (contents and metadata)",
            quality: "evict/fill: accesses until may/must information is complete",
            catalog_id: Some("future-arch"),
            content_digest: None,
            axes: vec![
                Axis::new("policy", ["lru", "fifo", "plru", "mru"]),
                Axis::new("assoc", [2u32, 4]),
            ],
            headline_metric: "evict",
            smaller_is_better: true,
        }
    }

    fn run(&self, params: &Params, _seed: u64) -> Result<CellResult, ScenarioError> {
        let policy = params.get("policy")?;
        let assoc = params.get_u64("assoc")? as usize;
        // 3k+2 accesses cover every known closed form (FIFO fills at
        // 3k-1); what is still unreached by then is reported as absent
        // (MRU's fill provably never exists).
        let metrics =
            compute_metrics_by_name(policy, assoc, 3 * assoc as u32 + 2).ok_or_else(|| {
                ScenarioError::BadParam {
                    axis: "policy".to_string(),
                    value: policy.to_string(),
                }
            })?;
        let mut out = Vec::new();
        if let Some(e) = metrics.evict {
            out.push(("evict".to_string(), e as f64));
        }
        if let Some(f) = metrics.fill {
            out.push(("fill".to_string(), f as f64));
        }
        out.push(("initial_states".to_string(), metrics.initial_states as f64));
        Ok(CellResult { metrics: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(policy: &str, assoc: u32) -> Params {
        Params::new(vec![
            ("policy".into(), policy.into()),
            ("assoc".into(), assoc.to_string()),
        ])
    }

    #[test]
    fn lru_matches_closed_form() {
        let r = CacheEvictFill.run(&cell("lru", 2), 0).unwrap();
        assert_eq!(r.metric("evict"), Some(2.0));
        assert_eq!(r.metric("fill"), Some(2.0));
    }

    #[test]
    fn fifo_matches_closed_form() {
        let r = CacheEvictFill.run(&cell("fifo", 2), 0).unwrap();
        assert_eq!(r.metric("evict"), Some(3.0));
        assert_eq!(r.metric("fill"), Some(5.0));
    }

    #[test]
    fn mru_fill_is_absent() {
        let r = CacheEvictFill.run(&cell("mru", 2), 0).unwrap();
        assert!(r.metric("evict").is_some());
        assert_eq!(r.metric("fill"), None);
    }

    #[test]
    fn unknown_policy_is_a_param_error() {
        assert!(matches!(
            CacheEvictFill.run(&cell("belady", 2), 0),
            Err(ScenarioError::BadParam { .. })
        ));
    }
}
