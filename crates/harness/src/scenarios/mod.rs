//! Built-in scenario registrations: one module per workspace crate
//! family, each turning that crate's simulators into registered,
//! matrix-runnable workloads.

pub mod branch;
pub mod cache;
pub mod dram;
pub mod dynsys_maps;
pub mod interconnect;
pub mod pipeline;
pub mod singlepath_conv;
pub mod wcet;

use crate::scenario::{Scenario, ScenarioError};
use tinyisa::kernels::{self, Kernel};

/// Resolves a `kernel` axis value to its fixed-size benchmark kernel —
/// the one dispatch shared by every scenario with a kernel axis, so
/// axis vocabularies cannot silently drift between scenarios.
pub(crate) fn kernel_by_name(name: &str) -> Result<Kernel, ScenarioError> {
    match name {
        "sum_loop" => Ok(kernels::sum_loop(12)),
        "popcount" => Ok(kernels::popcount_branchy(12)),
        "linear_search" => Ok(kernels::linear_search(8, 256)),
        "vector_max" => Ok(kernels::vector_max(8, 256)),
        _ => Err(ScenarioError::BadParam {
            axis: "kernel".to_string(),
            value: name.to_string(),
        }),
    }
}

/// Every built-in scenario, in registration order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(cache::CacheEvictFill),
        Box::new(pipeline::PipelineSipr),
        Box::new(pipeline::DominoEffect),
        Box::new(dram::DramRefresh),
        Box::new(dram::DramController),
        Box::new(interconnect::BusArbitration),
        Box::new(branch::BranchMispredict),
        Box::new(wcet::WcetTightness),
        Box::new(singlepath_conv::SinglePathIipr),
        Box::new(dynsys_maps::DynsysHorizon),
    ]
}
