//! Pipeline scenarios (`pipeline-sim`): state-induced predictability of
//! in-order vs. out-of-order cores, and the Section 2.2 domino effect.

use super::kernel_by_name;
use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use pipeline_sim::domino::schneider_example;
use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
use pipeline_sim::latency::PerfectMem;
use pipeline_sim::ooo::{default_entry_states, OooCore};
use predictability_core::domino::equation4_bound;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinyisa::exec::Machine;
use tinyisa::kernels::Kernel;
use tinyisa::reg::Reg;

/// Runs `kernel` once with a seed-derived input and returns the trace.
fn traced(kernel: &Kernel, seed: u64) -> Vec<tinyisa::exec::TraceOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let regs: Vec<(Reg, i64)> = kernel
        .input_regs
        .iter()
        .map(|&r| (r, rng.random_range(0..4096)))
        .collect();
    let mem: Vec<(u32, i64)> = kernel
        .input_mem
        .map(|(base, len)| {
            (0..len)
                .map(|i| (base + i, rng.random_range(-64..=64)))
                .collect()
        })
        .unwrap_or_default();
    Machine::default()
        .run_traced_with(&kernel.program, &regs, &mem)
        .expect("kernel must terminate")
        .trace
}

/// State-induced predictability of the compositional in-order pipeline
/// versus the out-of-order core, over each core's canonical entry-state
/// uncertainty set (Definition 4 on concrete hardware models).
pub struct PipelineSipr;

impl Scenario for PipelineSipr {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "pipeline-sipr",
            version: 1,
            title: "In-order vs. out-of-order: state-induced predictability",
            source_crate: "pipeline-sim",
            property: "execution time of a fixed program and input",
            uncertainty: "initial pipeline state",
            quality: "SIPr (Definition 4) and the worst state-induced gap",
            catalog_id: Some("preschedule"),
            content_digest: None,
            axes: vec![
                Axis::new("pipeline", ["inorder", "ooo"]),
                Axis::new("kernel", ["sum_loop", "popcount", "linear_search"]),
            ],
            headline_metric: "sipr",
            smaller_is_better: false,
        }
    }

    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
        let kernel = kernel_by_name(params.get("kernel")?)?;
        let trace = traced(&kernel, seed);
        let times: Vec<u64> = match params.get("pipeline")? {
            "inorder" => {
                let pipeline = InOrderPipeline::default();
                (0..=3u64)
                    .map(|warmup| {
                        let mut mem = PerfectMem::default();
                        pipeline.run(&trace, InOrderState { warmup }, &mut mem, None)
                    })
                    .collect()
            }
            "ooo" => {
                let core = OooCore::default();
                default_entry_states()
                    .into_iter()
                    .map(|q| core.run(&trace, q))
                    .collect()
            }
            other => {
                return Err(ScenarioError::BadParam {
                    axis: "pipeline".to_string(),
                    value: other.to_string(),
                })
            }
        };
        let min = *times.iter().min().expect("state set is non-empty");
        let max = *times.iter().max().expect("state set is non-empty");
        Ok(CellResult::new(vec![
            ("sipr", min as f64 / max as f64),
            ("gap_cycles", (max - min) as f64),
            ("t_best", min as f64),
            ("t_worst", max as f64),
        ]))
    }
}

/// The Schneider/PPC755 domino effect: `T(q1*, p_n) = 9n + 1` vs.
/// `T(q2*, p_n) = 12n`, hence `SIPr ≤ (9n+1)/12n → 3/4` (Equation 4).
pub struct DominoEffect;

impl Scenario for DominoEffect {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "pipeline-domino",
            version: 1,
            title: "Domino effect on the dual-unit greedy machine (Eq. 4)",
            source_crate: "pipeline-sim",
            property: "execution time of the n-iteration loop family",
            uncertainty: "initial unit-busy state (q1* vs q2*)",
            quality: "SIPr upper-bound series (9n+1)/12n",
            catalog_id: Some("future-arch"),
            content_digest: None,
            axes: vec![Axis::new("n", [1u32, 4, 16, 64])],
            headline_metric: "sipr",
            smaller_is_better: false,
        }
    }

    fn run(&self, params: &Params, _seed: u64) -> Result<CellResult, ScenarioError> {
        let n = params.get_u64("n")? as u32;
        let config = schneider_example();
        let (t_fast, t_slow) = config.times(n);
        let sipr = t_fast as f64 / t_slow as f64;
        let matches_eq4 = (sipr - equation4_bound(n)).abs() < 1e-12;
        Ok(CellResult::new(vec![
            ("sipr", sipr),
            ("t_fast", t_fast as f64),
            ("t_slow", t_slow as f64),
            ("gap_cycles", (t_slow - t_fast) as f64),
            ("matches_eq4", f64::from(u8::from(matches_eq4))),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domino_reproduces_equation4() {
        for n in [1u32, 16] {
            let p = Params::new(vec![("n".into(), n.to_string())]);
            let r = DominoEffect.run(&p, 0).unwrap();
            assert_eq!(r.metric("t_fast"), Some(9.0 * n as f64 + 1.0));
            assert_eq!(r.metric("t_slow"), Some(12.0 * n as f64));
            assert_eq!(r.metric("matches_eq4"), Some(1.0));
        }
    }

    #[test]
    fn inorder_is_more_state_predictable_than_ooo() {
        let run = |pipeline: &str| {
            let p = Params::new(vec![
                ("pipeline".into(), pipeline.into()),
                ("kernel".into(), "sum_loop".into()),
            ]);
            PipelineSipr.run(&p, 1).unwrap()
        };
        let inorder = run("inorder");
        let ooo = run("ooo");
        assert!(inorder.metric("sipr").unwrap() >= ooo.metric("sipr").unwrap());
        // The compositional in-order core's gap is bounded by its warmup.
        assert!(inorder.metric("gap_cycles").unwrap() <= 3.0);
    }

    #[test]
    fn same_seed_same_result() {
        let p = Params::new(vec![
            ("pipeline".into(), "ooo".into()),
            ("kernel".into(), "linear_search".into()),
        ]);
        assert_eq!(
            PipelineSipr.run(&p, 9).unwrap(),
            PipelineSipr.run(&p, 9).unwrap()
        );
    }
}
