//! Single-path scenario (`singlepath`): input-induced predictability of
//! a branchy program before and after if-conversion (Table 2, row 6).

use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
use pipeline_sim::latency::PerfectMem;
use tinyisa::exec::Machine;
use tinyisa::program::Program;
use tinyisa::reg::Reg;

const BRANCHY_SRC: &str = r"
    li   r2, 5
    blt  r1, r2, then
    sub  r3, r1, r2
    mul  r4, r3, r3
    jmp  join
then:
    sub  r3, r2, r1
join:
    halt
";

/// IIPr (Definition 5) of the branchy conditional versus its
/// if-converted single-path form: conversion drives IIPr to exactly 1.
pub struct SinglePathIipr;

fn time_of(program: &Program, input: i64) -> u64 {
    let run = Machine::default()
        .run_traced_with(program, &[(Reg::new(1), input)], &[])
        .expect("program must terminate");
    let mut mem = PerfectMem::default();
    InOrderPipeline::default().run(&run.trace, InOrderState { warmup: 0 }, &mut mem, None)
}

impl Scenario for SinglePathIipr {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "singlepath-iipr",
            version: 1,
            title: "Single-path conversion: input-induced predictability",
            source_crate: "singlepath",
            property: "execution time of the program",
            uncertainty: "program input",
            quality: "IIPr (Definition 5); 1 = perfectly input-predictable",
            catalog_id: Some("single-path"),
            content_digest: None,
            axes: vec![Axis::new("variant", ["branchy", "converted"])],
            headline_metric: "iipr",
            smaller_is_better: false,
        }
    }

    fn run(&self, params: &Params, _seed: u64) -> Result<CellResult, ScenarioError> {
        let branchy = tinyisa::asm::assemble(BRANCHY_SRC).expect("source assembles");
        let program = match params.get("variant")? {
            "branchy" => branchy,
            "converted" => {
                singlepath::if_convert(&branchy)
                    .expect("program is convertible")
                    .program
            }
            other => {
                return Err(ScenarioError::BadParam {
                    axis: "variant".to_string(),
                    value: other.to_string(),
                })
            }
        };
        let times: Vec<u64> = (-10..=10).map(|input| time_of(&program, input)).collect();
        let min = *times.iter().min().expect("input sweep is non-empty");
        let max = *times.iter().max().expect("input sweep is non-empty");
        Ok(CellResult::new(vec![
            ("iipr", min as f64 / max as f64),
            ("t_best", min as f64),
            ("t_worst", max as f64),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(variant: &str) -> Params {
        Params::new(vec![("variant".into(), variant.into())])
    }

    #[test]
    fn conversion_reaches_perfect_iipr() {
        let branchy = SinglePathIipr.run(&cell("branchy"), 0).unwrap();
        let converted = SinglePathIipr.run(&cell("converted"), 0).unwrap();
        assert!(branchy.metric("iipr").unwrap() < 1.0);
        assert_eq!(converted.metric("iipr"), Some(1.0));
    }
}
