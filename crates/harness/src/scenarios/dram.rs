//! DRAM scenarios (`dram-sim`): refresh-phase variability and
//! controller latency bounds (Table 2 rows 4 and 5).

use crate::scenario::{Axis, CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use dram_sim::controller::{simulate, worst_latency, Controller, Request};
use dram_sim::device::{DramDevice, DramTiming};
use dram_sim::refresh::{task_time, RefreshScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Task-time variability over every refresh phase: distributed refresh
/// leaks the phase into task times, burst refresh does not.
pub struct DramRefresh;

impl Scenario for DramRefresh {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "dram-refresh",
            version: 1,
            title: "DRAM refresh: phase-induced task-time variability",
            source_crate: "dram-sim",
            property: "completion time of a fixed access burst",
            uncertainty: "refresh counter phase at task start",
            quality: "task-time variability over all phases (cycles)",
            catalog_id: Some("refresh"),
            content_digest: None,
            axes: vec![
                Axis::new(
                    "scheme",
                    RefreshScheme::ALL.iter().map(|s| s.name().to_string()),
                ),
                Axis::new("accesses", [50u64, 200]),
            ],
            headline_metric: "variability",
            smaller_is_better: true,
        }
    }

    fn run(&self, params: &Params, _seed: u64) -> Result<CellResult, ScenarioError> {
        let scheme_name = params.get("scheme")?;
        let scheme =
            RefreshScheme::by_name(scheme_name).ok_or_else(|| ScenarioError::BadParam {
                axis: "scheme".to_string(),
                value: scheme_name.to_string(),
            })?;
        let accesses = params.get_u64("accesses")?;
        let timing = DramTiming::default();
        let times: Vec<u64> = (0..timing.t_refi)
            .map(|phase| task_time(scheme, timing, accesses, 4, phase))
            .collect();
        let min = *times.iter().min().expect("phase sweep is non-empty");
        let max = *times.iter().max().expect("phase sweep is non-empty");
        Ok(CellResult::new(vec![
            ("variability", (max - min) as f64),
            ("t_best", min as f64),
            ("t_worst", max as f64),
            ("sipr", min as f64 / max as f64),
        ]))
    }
}

/// Worst observed client-0 latency (and the analytic bound, where one
/// exists) under FR-FCFS, Predator-style and AMC-style controllers with
/// seeded interfering traffic.
pub struct DramController;

fn controller_by_name(name: &str, timing: DramTiming) -> Option<Controller> {
    let slot = timing.t_rcd + timing.t_cl + timing.t_rp;
    match name {
        "frfcfs" => Some(Controller::FrFcfs),
        "predator" => Some(Controller::Predator { sigma: slot }),
        "amc" => Some(Controller::Amc { slot }),
        _ => None,
    }
}

impl Scenario for DramController {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            id: "dram-controller",
            version: 1,
            title: "DRAM controllers: per-client latency bounds under interference",
            source_crate: "dram-sim",
            property: "latency of client-0 DRAM accesses",
            uncertainty: "interference from concurrently executing clients",
            quality: "existence and size of a per-client latency bound",
            catalog_id: Some("dram-ctrl"),
            content_digest: None,
            axes: vec![
                Axis::new("controller", ["frfcfs", "predator", "amc"]),
                Axis::new("clients", [2u64, 8]),
            ],
            headline_metric: "worst_observed",
            smaller_is_better: true,
        }
    }

    fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
        let timing = DramTiming::default();
        let name = params.get("controller")?;
        let controller =
            controller_by_name(name, timing).ok_or_else(|| ScenarioError::BadParam {
                axis: "controller".to_string(),
                value: name.to_string(),
            })?;
        let clients = params.get_u64("clients")? as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        // The analytic bounds assume regulated admission (at most one
        // outstanding request per client), so each client spaces its
        // requests at least one full TDM round apart; within the window
        // arrivals jitter per seed. Self-queueing would otherwise
        // inflate observed latencies past the interference bound.
        let slot = timing.t_rcd + timing.t_cl + timing.t_rp;
        let round = clients as u64 * slot + slot;
        let mut requests = Vec::new();
        for client in 0..clients {
            for k in 0..16u64 {
                requests.push(Request {
                    client,
                    arrival: k * round + rng.random_range(0..slot),
                    bank: rng.random_range(0..4),
                    row: rng.random_range(0..8),
                });
            }
        }
        let mut device = DramDevice::new(4, timing);
        let served = simulate(controller, &mut device, &requests, clients);
        let worst = worst_latency(&served, 0).expect("client 0 issued requests") as f64;
        let mut metrics = vec![("worst_observed".to_string(), worst)];
        if let Some(bound) = controller.latency_bound(timing, clients, 0) {
            metrics.push(("analytic_bound".to_string(), bound as f64));
            metrics.push((
                "bound_respected".to_string(),
                f64::from(u8::from(worst <= bound as f64)),
            ));
        }
        Ok(CellResult { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_refresh_has_zero_variability() {
        let p = Params::new(vec![
            ("scheme".into(), "burst".into()),
            ("accesses".into(), "50".into()),
        ]);
        let r = DramRefresh.run(&p, 0).unwrap();
        assert_eq!(r.metric("variability"), Some(0.0));
        assert_eq!(r.metric("sipr"), Some(1.0));
    }

    #[test]
    fn distributed_refresh_varies() {
        let p = Params::new(vec![
            ("scheme".into(), "distributed".into()),
            ("accesses".into(), "50".into()),
        ]);
        let r = DramRefresh.run(&p, 0).unwrap();
        assert!(r.metric("variability").unwrap() > 0.0);
    }

    #[test]
    fn amc_bound_exists_and_holds() {
        let p = Params::new(vec![
            ("controller".into(), "amc".into()),
            ("clients".into(), "8".into()),
        ]);
        let r = DramController.run(&p, 3).unwrap();
        assert_eq!(r.metric("bound_respected"), Some(1.0));
    }

    #[test]
    fn frfcfs_has_no_bound() {
        let p = Params::new(vec![
            ("controller".into(), "frfcfs".into()),
            ("clients".into(), "8".into()),
        ]);
        let r = DramController.run(&p, 3).unwrap();
        assert_eq!(r.metric("analytic_bound"), None);
        assert!(r.metric("worst_observed").is_some());
    }
}
