//! The parallel campaign executor.
//!
//! A campaign is a deterministic function of `(selected scenarios,
//! filter, campaign seed)` — never of thread count or scheduling. The
//! executor fixes the cell order up front (scenarios in registration
//! order, cells in row-major matrix order), derives every cell's seed
//! by hashing `(campaign seed, scenario id, cell key)`, resolves
//! memoized cells from the [`ResultStore`], and fans the remaining
//! *jobs* out over worker threads that pull from a shared cursor.
//! Workers write results back by job index, so the assembled campaign
//! is identical whether one thread ran it or sixteen did.

use crate::matrix::{expand, Filter};
use crate::registry::Registry;
use crate::scenario::{CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use crate::store::{fingerprint_with_content, ResultStore, StoredCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Campaign-level knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads (1 = run inline on the caller).
    pub threads: usize,
    /// The campaign seed every cell seed derives from.
    pub seed: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            seed: 0,
        }
    }
}

/// One evaluated cell of a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Scenario id.
    pub scenario: String,
    /// Cell coordinates.
    pub params: Params,
    /// The derived cell seed.
    pub seed: u64,
    /// Measured metrics.
    pub result: CellResult,
    /// True if the result came from the store without executing.
    pub memoized: bool,
}

/// A finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// The campaign seed.
    pub seed: u64,
    /// All cells, in deterministic order.
    pub cells: Vec<CampaignCell>,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells resolved from the store.
    pub memoized: usize,
}

/// One slice of a sharded campaign: this process owns every cell whose
/// fingerprint maps to `index` under [`shard_of`] with `count` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Which shard this worker claims (`0 <= index < count`).
    pub index: u32,
    /// Total number of shards the campaign was partitioned into.
    pub count: u32,
}

impl Shard {
    /// Validates the pair.
    pub fn new(index: u32, count: u32) -> Result<Shard, ScenarioError> {
        if count == 0 {
            return Err(ScenarioError::Dist("shard count must be >= 1".into()));
        }
        if index >= count {
            return Err(ScenarioError::Dist(format!(
                "shard index {index} out of range (count {count})"
            )));
        }
        Ok(Shard { index, count })
    }

    /// True if this shard owns the fingerprinted cell.
    pub fn owns(&self, fp: &str) -> bool {
        shard_of(fp, self.count) == self.index
    }
}

/// Maps a cell fingerprint to its shard. The assignment depends on
/// nothing but the fingerprint, which is what lets every worker
/// partition independently. Fingerprints are raw FNV-1a values whose
/// residues correlate for near-identical inputs, so the hash is pushed
/// through a SplitMix64 finalizer before the modulus to keep shard
/// loads balanced.
pub fn shard_of(fp: &str, shards: u32) -> u32 {
    let h = u64::from_str_radix(fp, 16).expect("fingerprints are 16 hex digits");
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % u64::from(shards.max(1))) as u32
}

/// Derives the deterministic seed of one cell.
pub fn cell_seed(campaign_seed: u64, scenario_id: &str, params: &Params) -> u64 {
    let mut h = crate::store::FNV_OFFSET ^ campaign_seed.rotate_left(17);
    for bytes in [
        scenario_id.as_bytes(),
        b"\xff" as &[u8],
        params.key().as_bytes(),
    ] {
        h = crate::store::fnv1a(bytes, h);
    }
    // SplitMix64 finalizer: spreads FNV's low-entropy high bits.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Job<'a> {
    cell_index: usize,
    scenario: &'a dyn Scenario,
    scenario_id: &'a str,
    scenario_version: u32,
    fingerprint: String,
    params: Params,
    seed: u64,
}

/// Runs the selected scenarios' filtered matrices.
///
/// `select` lists scenario ids (empty = every registered scenario;
/// repeated ids are deduplicated, first occurrence wins the order).
/// Memoized cells are taken from `store`; fresh results are inserted
/// into it. Scenario errors abort the campaign deterministically (the
/// error of the lowest-indexed failing cell wins).
pub fn run_campaign(
    registry: &Registry,
    select: &[String],
    filter: &Filter,
    config: &ExecConfig,
    store: &mut ResultStore,
) -> Result<Campaign, ScenarioError> {
    run_campaign_shard(registry, select, filter, config, store, None)
}

/// Resolves a selection against the registry (empty = every scenario;
/// repeated ids deduplicated, first occurrence wins the order).
pub(crate) fn select_scenarios<'a>(
    registry: &'a Registry,
    select: &[String],
) -> Result<Vec<&'a dyn Scenario>, ScenarioError> {
    if select.is_empty() {
        return Ok(registry.scenarios().collect());
    }
    let mut seen = std::collections::BTreeSet::new();
    select
        .iter()
        .filter(|id| seen.insert(id.as_str()))
        .map(|id| {
            registry
                .get(id)
                .ok_or_else(|| ScenarioError::UnknownScenario(id.clone()))
        })
        .collect()
}

/// A filter clause must name an axis of at least one selected scenario
/// — otherwise it is a typo that would silently run the whole
/// unfiltered campaign.
pub(crate) fn validate_filter(
    specs: &[ScenarioSpec],
    filter: &Filter,
) -> Result<(), ScenarioError> {
    for axis in filter.constrained_axes() {
        let known = specs
            .iter()
            .any(|spec| spec.axes.iter().any(|a| a.name == axis));
        if !known {
            return Err(ScenarioError::UnknownFilterAxis(axis.to_string()));
        }
    }
    Ok(())
}

/// [`run_campaign`], restricted to one shard of the cell partition.
///
/// With `shard: None` every matching cell runs. With `Some(shard)`,
/// only cells whose fingerprint the shard [owns](Shard::owns) are
/// evaluated; the resulting campaign (and store writes) cover exactly
/// that slice, so N disjoint shard runs merge into the same store a
/// single-process run would have produced.
pub fn run_campaign_shard(
    registry: &Registry,
    select: &[String],
    filter: &Filter,
    config: &ExecConfig,
    store: &mut ResultStore,
    shard: Option<Shard>,
) -> Result<Campaign, ScenarioError> {
    if let Some(s) = shard {
        // Re-validate: a Shard built by hand instead of Shard::new must
        // not silently claim nothing (index >= count matches no cell).
        Shard::new(s.index, s.count)?;
    }
    let scenarios = select_scenarios(registry, select)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    validate_filter(&specs, filter)?;

    // Fix the cell order and resolve memoization up front.
    let mut cells: Vec<CampaignCell> = Vec::new();
    let mut jobs: Vec<Job<'_>> = Vec::new();
    for (scenario, spec) in scenarios.iter().zip(&specs) {
        for params in expand(&spec.axes) {
            if !filter.matches(&params) {
                continue;
            }
            let seed = cell_seed(config.seed, spec.id, &params);
            let fp = fingerprint_with_content(
                spec.id,
                spec.version,
                spec.content_digest.as_deref(),
                &params,
                seed,
            );
            if let Some(s) = shard {
                if !s.owns(&fp) {
                    continue;
                }
            }
            let memoized = store.get_by_fingerprint(&fp).cloned();
            let cell_index = cells.len();
            match memoized {
                Some(hit) => cells.push(CampaignCell {
                    scenario: spec.id.to_string(),
                    params,
                    seed,
                    result: hit.result,
                    memoized: true,
                }),
                None => {
                    cells.push(CampaignCell {
                        scenario: spec.id.to_string(),
                        params: params.clone(),
                        seed,
                        // Placeholder; overwritten from the job result.
                        result: CellResult {
                            metrics: Vec::new(),
                        },
                        memoized: false,
                    });
                    jobs.push(Job {
                        cell_index,
                        scenario: *scenario,
                        scenario_id: spec.id,
                        scenario_version: spec.version,
                        fingerprint: fp,
                        params,
                        seed,
                    });
                }
            }
        }
    }

    let executed = jobs.len();
    let memoized = cells.len() - executed;
    let outcomes = execute_jobs(&jobs, config.threads.max(1));

    // Deterministic error selection: lowest cell index wins. Every
    // successful result is persisted to the store even when a sibling
    // cell errors — cells are deterministic, so a retry after a partial
    // failure should memoize the work that did complete.
    let mut first_error: Option<(usize, ScenarioError)> = None;
    for (job, outcome) in jobs.iter().zip(outcomes) {
        match outcome.expect("every job must produce an outcome") {
            Ok(result) => {
                // Insert under the content-aware fingerprint derived
                // during partitioning (ResultStore::insert would
                // recompute without the content digest).
                store.insert_cell(
                    job.fingerprint.clone(),
                    StoredCell {
                        scenario: job.scenario_id.to_string(),
                        version: job.scenario_version,
                        params_key: job.params.key(),
                        seed: job.seed,
                        result: result.clone(),
                    },
                );
                cells[job.cell_index].result = result;
            }
            Err(e) => {
                if first_error
                    .as_ref()
                    .is_none_or(|(i, _)| job.cell_index < *i)
                {
                    first_error = Some((job.cell_index, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }

    Ok(Campaign {
        seed: config.seed,
        cells,
        executed,
        memoized,
    })
}

type Outcome = Result<CellResult, ScenarioError>;

fn execute_jobs(jobs: &[Job<'_>], threads: usize) -> Vec<Option<Outcome>> {
    let cursor = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Option<Outcome>>> = Mutex::new(vec![None; jobs.len()]);
    let workers = threads.min(jobs.len()).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let outcome = job.scenario.run(&job.params, job.seed);
                outcomes.lock().expect("worker poisoned the outcome lock")[i] = Some(outcome);
            }));
        }
        for handle in handles {
            handle.join().expect("scenario worker panicked");
        }
    });
    outcomes.into_inner().expect("outcome lock poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Axis, ScenarioSpec};

    /// A deterministic toy scenario: metric = f(params, seed).
    struct Toy;

    impl Scenario for Toy {
        fn spec(&self) -> ScenarioSpec {
            ScenarioSpec {
                id: "toy",
                version: 1,
                title: "toy",
                source_crate: "harness",
                property: "p",
                uncertainty: "u",
                quality: "q",
                catalog_id: None,
                content_digest: None,
                axes: vec![Axis::new("a", [1, 2, 3]), Axis::new("b", [10, 20])],
                headline_metric: "value",
                smaller_is_better: true,
            }
        }

        fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
            let a = params.get_u64("a")?;
            let b = params.get_u64("b")?;
            Ok(CellResult::new(vec![(
                "value",
                (a * 1000 + b) as f64 + (seed % 97) as f64 / 100.0,
            )]))
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::empty();
        r.register(Box::new(Toy));
        r
    }

    fn run(threads: usize, seed: u64, store: &mut ResultStore) -> Campaign {
        run_campaign(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig { threads, seed },
            store,
        )
        .unwrap()
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let single = run(1, 42, &mut ResultStore::new());
        let parallel = run(4, 42, &mut ResultStore::new());
        assert_eq!(single.cells, parallel.cells);
        assert_eq!(single.executed, 6);
    }

    #[test]
    fn campaign_seed_changes_cell_seeds() {
        let a = run(2, 1, &mut ResultStore::new());
        let b = run(2, 2, &mut ResultStore::new());
        assert_ne!(a.cells, b.cells);
        let seeds: std::collections::HashSet<u64> = a.cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), a.cells.len(), "cell seeds are distinct");
    }

    #[test]
    fn second_run_is_fully_memoized() {
        let mut store = ResultStore::new();
        let first = run(4, 7, &mut store);
        assert_eq!(first.executed, 6);
        assert_eq!(first.memoized, 0);
        let second = run(4, 7, &mut store);
        assert_eq!(second.executed, 0);
        assert_eq!(second.memoized, 6);
        assert_eq!(
            first.cells.iter().map(|c| &c.result).collect::<Vec<_>>(),
            second.cells.iter().map(|c| &c.result).collect::<Vec<_>>()
        );
    }

    #[test]
    fn filters_restrict_the_matrix() {
        let campaign = run_campaign(
            &registry(),
            &[],
            &Filter::all().with("a", "2"),
            &ExecConfig {
                threads: 2,
                seed: 0,
            },
            &mut ResultStore::new(),
        )
        .unwrap();
        assert_eq!(campaign.cells.len(), 2);
        assert!(campaign
            .cells
            .iter()
            .all(|c| c.params.get("a").unwrap() == "2"));
    }

    #[test]
    fn repeated_selection_is_deduplicated() {
        let campaign = run_campaign(
            &registry(),
            &["toy".to_string(), "toy".to_string()],
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 0,
            },
            &mut ResultStore::new(),
        )
        .unwrap();
        assert_eq!(campaign.cells.len(), 6, "matrix must not be duplicated");
        assert_eq!(campaign.executed, 6);
    }

    #[test]
    fn version_bump_invalidates_memoized_cells() {
        /// Same id and behaviour as [`Toy`], different version.
        struct Toy2;
        impl Scenario for Toy2 {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    version: 2,
                    ..Toy.spec()
                }
            }
            fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
                Toy.run(params, seed)
            }
        }
        let mut store = ResultStore::new();
        run(1, 3, &mut store);
        let mut v2 = Registry::empty();
        v2.register(Box::new(Toy2));
        let campaign = run_campaign(
            &v2,
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 3,
            },
            &mut store,
        )
        .unwrap();
        assert_eq!(
            campaign.memoized, 0,
            "old-version results must not be served"
        );
        assert_eq!(campaign.executed, 6);
    }

    #[test]
    fn unknown_selection_errors() {
        let err = run_campaign(
            &registry(),
            &["nope".to_string()],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
            },
            &mut ResultStore::new(),
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownScenario("nope".into()));
    }

    #[test]
    fn typoed_filter_axis_errors() {
        let err = run_campaign(
            &registry(),
            &[],
            &Filter::all().with("polcy", "lru"),
            &ExecConfig {
                threads: 1,
                seed: 0,
            },
            &mut ResultStore::new(),
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownFilterAxis("polcy".into()));
    }

    #[test]
    fn partial_failure_persists_completed_cells() {
        /// Errors on the cell `a=2`; succeeds elsewhere.
        struct Flaky;
        impl Scenario for Flaky {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    id: "flaky",
                    axes: vec![Axis::new("a", [1, 2, 3])],
                    ..Toy.spec()
                }
            }
            fn run(&self, params: &Params, _seed: u64) -> Result<CellResult, ScenarioError> {
                match params.get_u64("a")? {
                    2 => Err(ScenarioError::BadParam {
                        axis: "a".into(),
                        value: "2".into(),
                    }),
                    a => Ok(CellResult::new(vec![("value", a as f64)])),
                }
            }
        }
        let mut registry = Registry::empty();
        registry.register(Box::new(Flaky));
        let mut store = ResultStore::new();
        let err = run_campaign(
            &registry,
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
            },
            &mut store,
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::BadParam { .. }));
        assert_eq!(store.len(), 2, "completed cells memoized despite the error");
    }

    #[test]
    fn shards_partition_the_campaign() {
        let full = run(2, 9, &mut ResultStore::new());
        for count in [1u32, 2, 3, 4] {
            let mut sharded: Vec<CampaignCell> = Vec::new();
            for index in 0..count {
                let slice = run_campaign_shard(
                    &registry(),
                    &[],
                    &Filter::all(),
                    &ExecConfig {
                        threads: 2,
                        seed: 9,
                    },
                    &mut ResultStore::new(),
                    Some(Shard::new(index, count).unwrap()),
                )
                .unwrap();
                sharded.extend(slice.cells);
            }
            assert_eq!(sharded.len(), full.cells.len(), "count {count} covers");
            // Same multiset of cells (shard order permutes the list).
            let key = |c: &CampaignCell| (c.scenario.clone(), c.params.key());
            let mut a: Vec<_> = sharded.iter().map(key).collect();
            let mut b: Vec<_> = full.cells.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "count {count} is a permutation");
        }
    }

    #[test]
    fn invalid_shards_are_rejected() {
        assert!(Shard::new(0, 0).is_err());
        assert!(Shard::new(3, 3).is_err());
        assert!(Shard::new(2, 3).is_ok());
        let err = run_campaign_shard(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
            },
            &mut ResultStore::new(),
            Some(Shard { index: 5, count: 2 }),
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(_)));
    }

    #[test]
    fn cell_seed_is_stable_and_input_sensitive() {
        let p = Params::new(vec![("a".into(), "1".into())]);
        let s = cell_seed(5, "toy", &p);
        assert_eq!(s, cell_seed(5, "toy", &p));
        assert_ne!(s, cell_seed(6, "toy", &p));
        assert_ne!(s, cell_seed(5, "other", &p));
    }
}
