//! The streaming parallel campaign executor.
//!
//! A campaign is a deterministic function of `(selected scenarios,
//! filter, campaign seed)` — never of thread count or scheduling. The
//! executor fixes the cell order up front (scenarios in registration
//! order, cells in row-major matrix order) by working over a *global
//! lazy index space*: scenario matrices are never materialized; workers
//! pull raw indices from a shared cursor and decode each one on the fly
//! through [`CellIter`](crate::matrix::CellIter) — filter check, shard
//! check and store lookup included. Every worker accumulates its
//! outcomes in a private slot buffer (no shared mutex on the hot path);
//! the buffers are merged and sorted by global index afterwards, so the
//! assembled campaign is identical whether one thread ran it or
//! sixteen. [`ExecHooks`] expose the stream as it happens: a progress
//! callback per executed cell and a result sink that feeds the
//! crash-resume journal.

use crate::matrix::{CellIter, Filter, REP_AXIS};
use crate::registry::Registry;
use crate::scenario::{CellResult, Params, Scenario, ScenarioError, ScenarioSpec};
use crate::store::{fingerprint_with_content, ResultStore, StoredCell};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Campaign-level knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads (1 = run inline on the caller).
    pub threads: usize,
    /// The campaign seed every cell seed derives from.
    pub seed: u64,
    /// Replicates per base cell (`1` = today's behavior, byte for
    /// byte). Above one, every scenario matrix is multiplied by a
    /// fastest-varying `rep` axis; each replicate runs under
    /// [`crate::expect::replicate_seed`] and a full-domain run folds
    /// the outcomes into distribution metrics keyed by the base
    /// fingerprint.
    pub replicates: u32,
    /// Keep the raw per-replicate cells in the store next to the fold
    /// cells (default: the fold replaces them).
    pub keep_replicates: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            seed: 0,
            replicates: 1,
            keep_replicates: false,
        }
    }
}

/// One evaluated cell of a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Scenario id.
    pub scenario: String,
    /// Cell coordinates.
    pub params: Params,
    /// The derived cell seed.
    pub seed: u64,
    /// Measured metrics.
    pub result: CellResult,
    /// True if the result came from the store without executing.
    pub memoized: bool,
}

/// A finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// The campaign seed.
    pub seed: u64,
    /// All cells, in deterministic order. For a replicated full-domain
    /// run these are the *fold* cells (one per base cell, distribution
    /// metrics); `executed`/`memoized` still count raw replicates.
    pub cells: Vec<CampaignCell>,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells resolved from the store.
    pub memoized: usize,
    /// Replicates per base cell the campaign ran with (1 = unfolded).
    pub replicates: u32,
}

/// One slice of a sharded campaign: this process owns every cell whose
/// fingerprint maps to `index` under [`shard_of`] with `count` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Which shard this worker claims (`0 <= index < count`).
    pub index: u32,
    /// Total number of shards the campaign was partitioned into.
    pub count: u32,
}

impl Shard {
    /// Validates the pair.
    pub fn new(index: u32, count: u32) -> Result<Shard, ScenarioError> {
        if count == 0 {
            return Err(ScenarioError::Dist("shard count must be >= 1".into()));
        }
        if index >= count {
            return Err(ScenarioError::Dist(format!(
                "shard index {index} out of range (count {count})"
            )));
        }
        Ok(Shard { index, count })
    }

    /// True if this shard owns the fingerprinted cell. Errors on a
    /// malformed fingerprint (a corrupted store or manifest) instead of
    /// panicking the worker.
    pub fn owns(&self, fp: &str) -> Result<bool, ScenarioError> {
        Ok(shard_of(fp, self.count)? == self.index)
    }
}

/// Maps a cell fingerprint to its shard. The assignment depends on
/// nothing but the fingerprint, which is what lets every worker
/// partition independently. Fingerprints are raw FNV-1a values whose
/// residues correlate for near-identical inputs, so the hash is pushed
/// through a SplitMix64 finalizer before the modulus to keep shard
/// loads balanced. A malformed fingerprint (hand-edited or corrupted
/// store/manifest data) is a [`ScenarioError::Dist`], not a panic.
pub fn shard_of(fp: &str, shards: u32) -> Result<u32, ScenarioError> {
    let malformed = || {
        ScenarioError::Dist(format!(
            "malformed fingerprint `{fp}` (expected 16 hex digits)"
        ))
    };
    if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(malformed());
    }
    let h = u64::from_str_radix(fp, 16).map_err(|_| malformed())?;
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Ok((z % u64::from(shards.max(1))) as u32)
}

/// Derives the deterministic seed of one cell.
pub fn cell_seed(campaign_seed: u64, scenario_id: &str, params: &Params) -> u64 {
    let mut h = crate::store::FNV_OFFSET ^ campaign_seed.rotate_left(17);
    for bytes in [
        scenario_id.as_bytes(),
        b"\xff" as &[u8],
        params.key().as_bytes(),
    ] {
        h = crate::store::fnv1a(bytes, h);
    }
    // SplitMix64 finalizer: spreads FNV's low-entropy high bits.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The cell domain one executor invocation sweeps, expressed over the
/// campaign's *global lazy index space*: scenarios in selection order,
/// each scenario's matrix in row-major order. The space is never
/// materialized — cells are decoded from indices on demand.
#[derive(Debug, Clone, Copy)]
pub enum CellDomain<'a> {
    /// Every matching cell.
    All,
    /// Cells whose fingerprint the shard owns (the static partition).
    Shard(Shard),
    /// Explicit index ranges into the global lazy space (the
    /// work-stealing lease protocol executes one claimed chunk range at
    /// a time). Ranges must be in bounds and ascending-disjoint for the
    /// assembled cell order to stay deterministic.
    Ranges(&'a [Range<usize>]),
}

/// A progress heartbeat, emitted after every completed cell — freshly
/// executed or memoized — so a consumer can track true completion
/// (`executed + memoized` out of `total`), not just fresh work.
#[derive(Debug, Clone, Copy)]
pub struct ExecProgress {
    /// Fresh cells completed so far in this invocation.
    pub executed: usize,
    /// Memo hits seen so far in this invocation.
    pub memoized: usize,
    /// Lazy cells in the swept domain (an upper bound on work: filtered
    /// or unowned cells are scanned but never executed).
    pub total: usize,
}

/// A progress callback (worker threads call it, hence `Sync`).
pub type ProgressFn<'a> = &'a (dyn Fn(ExecProgress) + Sync);

/// A per-result sink: `(fingerprint, stored cell)` for every fresh
/// successful cell, as it completes.
pub type ResultSink<'a> = &'a (dyn Fn(&str, &StoredCell) + Sync);

/// One cell's timing observation, handed to the telemetry sink as the
/// cell completes. Wall-clock time lives only in this side channel —
/// never in the result store, whose bytes must stay a deterministic
/// function of the campaign.
#[derive(Debug, Clone, Copy)]
pub struct CellTiming<'a> {
    /// The cell's store fingerprint.
    pub fingerprint: &'a str,
    /// Scenario id.
    pub scenario: &'a str,
    /// Measured wall-clock duration of a fresh, successful evaluation;
    /// `None` for a memoized hit (an access, not an execution).
    pub wall: Option<std::time::Duration>,
}

/// A per-cell timing sink: every *successful* cell — fresh (with its
/// measured duration) or memoized (access only) — as it completes.
pub type TimingSink<'a> = &'a (dyn Fn(CellTiming<'_>) + Sync);

/// Observability hooks into the execution stream. All callbacks are
/// invoked from worker threads as cells complete; all default to
/// no-ops.
#[derive(Clone, Copy, Default)]
pub struct ExecHooks<'a> {
    /// Called after every completed cell (freshly executed or memoized).
    pub progress: Option<ProgressFn<'a>>,
    /// Called with every fresh *successful* result as it completes,
    /// before the campaign is assembled — the crash-resume journal
    /// sink. Invocation order across cells is scheduling-dependent; the
    /// journal is a set, so replay does not care.
    pub on_result: Option<ResultSink<'a>>,
    /// Called with every successful cell's timing — measured wall
    /// clock for fresh cells, access-only for memoized hits — the
    /// telemetry sidecar sink. Like `on_result`, invocation order is
    /// scheduling-dependent and the sidecar aggregate does not care.
    pub on_timing: Option<TimingSink<'a>>,
    /// Span/counter recorder ([`crate::obs`]): when set, the executor
    /// records `plan`, `worker`, `decode`, `memo` and `cell` spans plus
    /// memo-hit/miss and cells-executed counters. Purely observational
    /// — attaching it never changes campaign results or store bytes.
    pub obs: Option<&'a crate::obs::Obs>,
    /// Cooperative cancellation: when the flag flips to `true`, workers
    /// stop pulling new cells after finishing the one in hand and the
    /// run returns [`ScenarioError::Cancelled`]. Every cell completed
    /// before the cancel is still assembled into the store (and was
    /// already offered to `on_result`), so a cancelled campaign resumes
    /// from its journal with zero recompute — the graceful-shutdown
    /// path of a long-running submit scheduler.
    pub cancel: Option<&'a std::sync::atomic::AtomicBool>,
}

/// Test/CI hook: `CAMPAIGN_CELL_DELAY_MS` sleeps after every freshly
/// executed cell, turning any shard into an artificially slow one (the
/// work-stealing and crash-resume suites race against it). Unset or
/// unparseable means no delay.
fn cell_delay() -> std::time::Duration {
    std::time::Duration::from_millis(
        std::env::var("CAMPAIGN_CELL_DELAY_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    )
}

/// Runs the selected scenarios' filtered matrices.
///
/// `select` lists scenario ids (empty = every registered scenario;
/// repeated ids are deduplicated, first occurrence wins the order).
/// Memoized cells are taken from `store`; fresh results are inserted
/// into it. Scenario errors abort the campaign deterministically (the
/// error of the lowest-indexed failing cell wins).
pub fn run_campaign(
    registry: &Registry,
    select: &[String],
    filter: &Filter,
    config: &ExecConfig,
    store: &mut ResultStore,
) -> Result<Campaign, ScenarioError> {
    run_campaign_with(
        registry,
        select,
        filter,
        config,
        store,
        CellDomain::All,
        ExecHooks::default(),
    )
}

/// Resolves a selection against the registry (empty = every scenario;
/// repeated ids deduplicated, first occurrence wins the order).
pub(crate) fn select_scenarios<'a>(
    registry: &'a Registry,
    select: &[String],
) -> Result<Vec<&'a dyn Scenario>, ScenarioError> {
    if select.is_empty() {
        return Ok(registry.scenarios().collect());
    }
    let mut seen = std::collections::BTreeSet::new();
    select
        .iter()
        .filter(|id| seen.insert(id.as_str()))
        .map(|id| {
            registry
                .get(id)
                .ok_or_else(|| ScenarioError::UnknownScenario(id.clone()))
        })
        .collect()
}

/// A filter clause must name an axis of at least one selected scenario
/// — otherwise it is a typo that would silently run the whole
/// unfiltered campaign.
pub(crate) fn validate_filter(
    specs: &[ScenarioSpec],
    filter: &Filter,
) -> Result<(), ScenarioError> {
    for axis in filter.constrained_axes() {
        let known = specs
            .iter()
            .any(|spec| spec.axes.iter().any(|a| a.name == axis));
        if !known {
            return Err(ScenarioError::UnknownFilterAxis(axis.to_string()));
        }
    }
    Ok(())
}

/// [`run_campaign`], restricted to one shard of the cell partition.
///
/// With `shard: None` every matching cell runs. With `Some(shard)`,
/// only cells whose fingerprint the shard [owns](Shard::owns) are
/// evaluated; the resulting campaign (and store writes) cover exactly
/// that slice, so N disjoint shard runs merge into the same store a
/// single-process run would have produced.
pub fn run_campaign_shard(
    registry: &Registry,
    select: &[String],
    filter: &Filter,
    config: &ExecConfig,
    store: &mut ResultStore,
    shard: Option<Shard>,
) -> Result<Campaign, ScenarioError> {
    let domain = match shard {
        Some(s) => CellDomain::Shard(s),
        None => CellDomain::All,
    };
    run_campaign_with(
        registry,
        select,
        filter,
        config,
        store,
        domain,
        ExecHooks::default(),
    )
}

/// What one scanned lazy index produced: either a store hit or a fresh
/// evaluation. Each matching cell gets exactly one slot, owned by the
/// worker that scanned it — the lock-free replacement for the old
/// shared `Mutex<Vec<Option<Outcome>>>` funnel.
enum SlotOutcome {
    Memoized,
    Fresh(Result<CellResult, ScenarioError>),
}

struct Slot {
    /// Position in the global lazy index space (the deterministic sort
    /// key that makes assembly scheduling-independent).
    global: usize,
    /// Index into the selected-scenario list.
    scenario: usize,
    params: Params,
    seed: u64,
    fingerprint: String,
    outcome: SlotOutcome,
}

/// The full-featured executor entry point: [`run_campaign`] over an
/// explicit [`CellDomain`] with [`ExecHooks`]. Everything else is a
/// wrapper around this.
pub fn run_campaign_with(
    registry: &Registry,
    select: &[String],
    filter: &Filter,
    config: &ExecConfig,
    store: &mut ResultStore,
    domain: CellDomain<'_>,
    hooks: ExecHooks<'_>,
) -> Result<Campaign, ScenarioError> {
    if let CellDomain::Shard(s) = domain {
        // Re-validate: a Shard built by hand instead of Shard::new must
        // not silently claim nothing (index >= count matches no cell).
        Shard::new(s.index, s.count)?;
    }
    let plan_span = hooks.obs.map(|o| o.span("plan", "exec"));
    if config.replicates == 0 {
        return Err(ScenarioError::Dist("replicates must be >= 1".into()));
    }
    let scenarios = select_scenarios(registry, select)?;
    let specs: Vec<_> = scenarios.iter().map(|s| s.spec()).collect();
    validate_filter(&specs, filter)?;
    // The replicate axis is reserved: a scenario declaring its own
    // `rep` axis would make base and replicate coordinates ambiguous.
    let reps = config.replicates as usize;
    if reps > 1 {
        for spec in &specs {
            if spec.axes.iter().any(|a| a.name == REP_AXIS) {
                return Err(ScenarioError::Dist(format!(
                    "scenario `{}` declares an axis named `{REP_AXIS}`, which is \
                     reserved for --replicates",
                    spec.id
                )));
            }
        }
    }

    // The global lazy index space: prefix[i] is the first index of
    // scenario i's matrix (× the replicate multiplier), prefix[len]
    // the total. The replicate axis varies fastest, so the N cells of
    // one base cell are consecutive.
    let mut prefix = Vec::with_capacity(specs.len() + 1);
    let mut total = 0usize;
    for spec in &specs {
        prefix.push(total);
        total += spec.matrix_size() * reps;
    }
    prefix.push(total);

    let whole = 0..total;
    let (ranges, shard): (&[Range<usize>], Option<Shard>) = match domain {
        CellDomain::All => (std::slice::from_ref(&whole), None),
        CellDomain::Shard(s) => (std::slice::from_ref(&whole), Some(s)),
        CellDomain::Ranges(r) => (r, None),
    };
    for range in ranges {
        if range.start > range.end || range.end > total {
            return Err(ScenarioError::Dist(format!(
                "cell range {}..{} out of bounds (campaign has {total} lazy cells)",
                range.start, range.end
            )));
        }
    }
    // Ascending-disjoint, as the CellDomain contract promises:
    // overlapping or out-of-order ranges would silently duplicate
    // cells in the assembled campaign (and the journal).
    for pair in ranges.windows(2) {
        if pair[1].start < pair[0].end {
            return Err(ScenarioError::Dist(format!(
                "cell ranges {}..{} and {}..{} must be ascending and disjoint",
                pair[0].start, pair[0].end, pair[1].start, pair[1].end
            )));
        }
    }
    let scan_len: usize = ranges.iter().map(ExactSizeIterator::len).sum();
    drop(plan_span);

    let cursor = AtomicUsize::new(0);
    let executed_cells = AtomicUsize::new(0);
    let memo_cells = AtomicUsize::new(0);
    let workers = config.threads.max(1).min(scan_len.max(1));
    let delay = cell_delay();

    // Phase 1 — parallel streaming scan. The store is a shared
    // read-only view here; fresh results land in per-worker slot
    // buffers and are folded into the store in phase 2.
    let mut slots: Vec<Slot> = {
        let store: &ResultStore = store;
        let scan = |out: &mut Vec<Slot>| {
            // One `worker` span per worker thread: its whole pull loop,
            // so the trace shows per-worker occupancy and imbalance.
            let _worker_span = hooks.obs.map(|o| o.span("worker", "exec"));
            loop {
                if hooks.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= scan_len {
                    break;
                }
                let decode_span = hooks.obs.map(|o| o.span("decode", "exec"));
                // Map the scan position to a global lazy index (ranges are
                // few — a linear walk is cheaper than anything clever).
                let mut rest = k;
                let global = ranges
                    .iter()
                    .find_map(|r| {
                        if rest < r.len() {
                            Some(r.start + rest)
                        } else {
                            rest -= r.len();
                            None
                        }
                    })
                    .expect("scan position within summed range length");
                let scenario = prefix.partition_point(|&p| p <= global) - 1;
                let spec = &specs[scenario];
                let local = global - prefix[scenario];
                // Replicates: the base cell index and replicate index
                // are the quotient/remainder of the local index — the
                // filter sees *base* coordinates, so it keeps or drops
                // whole replicate groups.
                let (base_local, rep) = (local / reps, (local % reps) as u32);
                let base_params = CellIter::new(&spec.axes)
                    .cell_at(base_local)
                    .expect("lazy index within the scenario's matrix");
                if !filter.matches(&base_params) {
                    continue;
                }
                let base_seed = cell_seed(config.seed, spec.id, &base_params);
                let (params, seed) = if reps > 1 {
                    (
                        crate::matrix::with_rep(&base_params, rep),
                        crate::expect::replicate_seed(base_seed, rep),
                    )
                } else {
                    (base_params, base_seed)
                };
                let fingerprint = fingerprint_with_content(
                    spec.id,
                    spec.version,
                    spec.content_digest.as_deref(),
                    &params,
                    seed,
                );
                drop(decode_span);
                let slot = |outcome| Slot {
                    global,
                    scenario,
                    params: params.clone(),
                    seed,
                    fingerprint: fingerprint.clone(),
                    outcome,
                };
                if let Some(s) = shard {
                    match s.owns(&fingerprint) {
                        Ok(false) => continue,
                        Ok(true) => {}
                        Err(e) => {
                            out.push(slot(SlotOutcome::Fresh(Err(e))));
                            continue;
                        }
                    }
                }
                let memo_span = hooks.obs.map(|o| o.span("memo", "store"));
                let memoized = store.get_by_fingerprint(&fingerprint).is_some();
                drop(memo_span);
                if let Some(obs) = hooks.obs {
                    obs.count(if memoized { "memo/hit" } else { "memo/miss" }, 1);
                }
                if memoized {
                    if let Some(timing) = hooks.on_timing {
                        timing(CellTiming {
                            fingerprint: &fingerprint,
                            scenario: spec.id,
                            wall: None,
                        });
                    }
                    let memo = memo_cells.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(progress) = hooks.progress {
                        progress(ExecProgress {
                            executed: executed_cells.load(Ordering::Relaxed),
                            memoized: memo,
                            total: scan_len,
                        });
                    }
                    out.push(slot(SlotOutcome::Memoized));
                    continue;
                }
                // The measured span covers the evaluation plus the test
                // delay hook: CAMPAIGN_CELL_DELAY_MS simulates a slow cell,
                // so telemetry must see it as one. The clock is the shared
                // obs monotonic epoch: a wall-clock step can never make
                // this duration negative, and the same interval feeds the
                // telemetry sidecar and the `cell` trace span.
                let started_ns = crate::obs::monotonic_ns();
                let outcome = scenarios[scenario].run(&params, seed);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let wall_ns = crate::obs::monotonic_ns().saturating_sub(started_ns);
                let wall = std::time::Duration::from_nanos(wall_ns);
                if let Some(obs) = hooks.obs {
                    obs.record_span("cell", "exec", started_ns, wall_ns);
                    obs.count("cells/executed", 1);
                }
                if let Ok(result) = &outcome {
                    if let Some(sink) = hooks.on_result {
                        sink(
                            &fingerprint,
                            &StoredCell {
                                scenario: spec.id.to_string(),
                                version: spec.version,
                                params_key: params.key(),
                                seed,
                                fold: false,
                                result: result.clone(),
                            },
                        );
                    }
                    if let Some(timing) = hooks.on_timing {
                        timing(CellTiming {
                            fingerprint: &fingerprint,
                            scenario: spec.id,
                            wall: Some(wall),
                        });
                    }
                }
                let executed = executed_cells.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(progress) = hooks.progress {
                    progress(ExecProgress {
                        executed,
                        memoized: memo_cells.load(Ordering::Relaxed),
                        total: scan_len,
                    });
                }
                out.push(slot(SlotOutcome::Fresh(outcome)));
            }
        };
        if workers <= 1 {
            let mut out = Vec::new();
            scan(&mut out);
            out
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            scan(&mut out);
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("scenario worker panicked"))
                    .collect()
            })
        }
    };

    // Phase 2 — deterministic assembly: global-index order erases the
    // scheduling, fresh results move into the store (the campaign cell
    // is written from the stored copy — no hot-path clone of a value
    // the store is about to own), and the lowest-indexed error wins.
    // Every successful result is persisted even when a sibling cell
    // errors — cells are deterministic, so a retry after a partial
    // failure memoizes the work that did complete.
    slots.sort_unstable_by_key(|s| s.global);
    let mut cells = Vec::with_capacity(slots.len());
    let mut executed = 0;
    let mut memoized = 0;
    let mut first_error: Option<ScenarioError> = None;
    for slot in slots {
        let scenario_id = specs[slot.scenario].id.to_string();
        match slot.outcome {
            SlotOutcome::Memoized => {
                let hit = store
                    .get_by_fingerprint(&slot.fingerprint)
                    .expect("memoized cell vanished from the store");
                memoized += 1;
                cells.push(CampaignCell {
                    scenario: scenario_id,
                    params: slot.params,
                    seed: slot.seed,
                    result: hit.result.clone(),
                    memoized: true,
                });
            }
            SlotOutcome::Fresh(Ok(result)) => {
                executed += 1;
                store.insert_cell(
                    slot.fingerprint.clone(),
                    StoredCell {
                        scenario: scenario_id.clone(),
                        version: specs[slot.scenario].version,
                        params_key: slot.params.key(),
                        seed: slot.seed,
                        fold: false,
                        result,
                    },
                );
                let stored = store
                    .get_by_fingerprint(&slot.fingerprint)
                    .expect("cell just inserted");
                cells.push(CampaignCell {
                    scenario: scenario_id,
                    params: slot.params,
                    seed: slot.seed,
                    result: stored.result.clone(),
                    memoized: false,
                });
            }
            SlotOutcome::Fresh(Err(e)) => {
                executed += 1;
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    // Cancellation reports *after* assembly: the completed cells are in
    // the store, so a rerun resumes instead of recomputing. A
    // cancelled replicated run keeps its raw cells unfolded — the
    // resumed run memoizes them and folds at its own completion.
    if hooks.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
        return Err(ScenarioError::Cancelled);
    }

    // Replicate fold: only a *complete* campaign (the full domain)
    // folds. Shard and range runs leave raw replicate cells for the
    // merge engine to fold once every shard's outcomes are fused — the
    // fold must see all N replicates of a base cell, and a partition
    // sees only the ones it owns.
    if reps > 1 && matches!(domain, CellDomain::All) {
        cells = fold_campaign(&specs, cells, config, store)?;
    }

    Ok(Campaign {
        seed: config.seed,
        cells,
        executed,
        memoized,
        replicates: config.replicates,
    })
}

/// Folds each consecutive group of N replicate cells of a completed
/// full-domain campaign into one fold cell: derived distribution
/// metrics inserted into the store under the *base* fingerprint, raw
/// replicate cells removed unless `keep_replicates`. Assembly already
/// sorted cells by global index and the replicate axis varies fastest,
/// so each group sits consecutively in replicate-index order — which
/// is exactly the order the fold must consume for shard/merge byte
/// equivalence.
fn fold_campaign(
    specs: &[ScenarioSpec],
    cells: Vec<CampaignCell>,
    config: &ExecConfig,
    store: &mut ResultStore,
) -> Result<Vec<CampaignCell>, ScenarioError> {
    let reps = config.replicates as usize;
    if !cells.len().is_multiple_of(reps) {
        return Err(ScenarioError::Store(format!(
            "replicate fold: {} cells is not a multiple of {reps} replicates",
            cells.len()
        )));
    }
    let mut folded = Vec::with_capacity(cells.len() / reps);
    for group in cells.chunks_exact(reps) {
        let spec = specs
            .iter()
            .find(|s| s.id == group[0].scenario)
            .expect("campaign cell of an unselected scenario");
        let (base_params, first_rep) =
            crate::matrix::split_rep(&group[0].params).ok_or_else(|| {
                ScenarioError::Store(format!(
                    "replicate fold: cell `{}` lacks a {REP_AXIS} coordinate",
                    group[0].params.key()
                ))
            })?;
        debug_assert_eq!(first_rep, 0, "groups start at replicate 0");
        let results: Vec<&CellResult> = group.iter().map(|c| &c.result).collect();
        let fold = crate::expect::fold_results(&results)?;
        let base_seed = cell_seed(config.seed, spec.id, &base_params);
        let base_fp = fingerprint_with_content(
            spec.id,
            spec.version,
            spec.content_digest.as_deref(),
            &base_params,
            base_seed,
        );
        if !config.keep_replicates {
            for cell in group {
                store.remove(&fingerprint_with_content(
                    spec.id,
                    spec.version,
                    spec.content_digest.as_deref(),
                    &cell.params,
                    cell.seed,
                ));
            }
        }
        store.insert_cell(
            base_fp,
            StoredCell {
                scenario: spec.id.to_string(),
                version: spec.version,
                params_key: base_params.key(),
                seed: base_seed,
                fold: true,
                result: fold.clone(),
            },
        );
        folded.push(CampaignCell {
            scenario: spec.id.to_string(),
            params: base_params,
            seed: base_seed,
            result: fold,
            memoized: group.iter().all(|c| c.memoized),
        });
    }
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Axis, ScenarioSpec};
    use std::sync::Mutex;

    /// A deterministic toy scenario: metric = f(params, seed).
    struct Toy;

    impl Scenario for Toy {
        fn spec(&self) -> ScenarioSpec {
            ScenarioSpec {
                id: "toy",
                version: 1,
                title: "toy",
                source_crate: "harness",
                property: "p",
                uncertainty: "u",
                quality: "q",
                catalog_id: None,
                content_digest: None,
                axes: vec![Axis::new("a", [1, 2, 3]), Axis::new("b", [10, 20])],
                headline_metric: "value",
                smaller_is_better: true,
            }
        }

        fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
            let a = params.get_u64("a")?;
            let b = params.get_u64("b")?;
            Ok(CellResult::new(vec![(
                "value",
                (a * 1000 + b) as f64 + (seed % 97) as f64 / 100.0,
            )]))
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::empty();
        r.register(Box::new(Toy));
        r
    }

    fn run(threads: usize, seed: u64, store: &mut ResultStore) -> Campaign {
        run_campaign(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads,
                seed,
                ..ExecConfig::default()
            },
            store,
        )
        .unwrap()
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let single = run(1, 42, &mut ResultStore::new());
        let parallel = run(4, 42, &mut ResultStore::new());
        assert_eq!(single.cells, parallel.cells);
        assert_eq!(single.executed, 6);
    }

    #[test]
    fn campaign_seed_changes_cell_seeds() {
        let a = run(2, 1, &mut ResultStore::new());
        let b = run(2, 2, &mut ResultStore::new());
        assert_ne!(a.cells, b.cells);
        let seeds: std::collections::HashSet<u64> = a.cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), a.cells.len(), "cell seeds are distinct");
    }

    #[test]
    fn second_run_is_fully_memoized() {
        let mut store = ResultStore::new();
        let first = run(4, 7, &mut store);
        assert_eq!(first.executed, 6);
        assert_eq!(first.memoized, 0);
        let second = run(4, 7, &mut store);
        assert_eq!(second.executed, 0);
        assert_eq!(second.memoized, 6);
        assert_eq!(
            first.cells.iter().map(|c| &c.result).collect::<Vec<_>>(),
            second.cells.iter().map(|c| &c.result).collect::<Vec<_>>()
        );
    }

    #[test]
    fn filters_restrict_the_matrix() {
        let campaign = run_campaign(
            &registry(),
            &[],
            &Filter::all().with("a", "2"),
            &ExecConfig {
                threads: 2,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut ResultStore::new(),
        )
        .unwrap();
        assert_eq!(campaign.cells.len(), 2);
        assert!(campaign
            .cells
            .iter()
            .all(|c| c.params.get("a").unwrap() == "2"));
    }

    #[test]
    fn repeated_selection_is_deduplicated() {
        let campaign = run_campaign(
            &registry(),
            &["toy".to_string(), "toy".to_string()],
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut ResultStore::new(),
        )
        .unwrap();
        assert_eq!(campaign.cells.len(), 6, "matrix must not be duplicated");
        assert_eq!(campaign.executed, 6);
    }

    #[test]
    fn version_bump_invalidates_memoized_cells() {
        /// Same id and behaviour as [`Toy`], different version.
        struct Toy2;
        impl Scenario for Toy2 {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    version: 2,
                    ..Toy.spec()
                }
            }
            fn run(&self, params: &Params, seed: u64) -> Result<CellResult, ScenarioError> {
                Toy.run(params, seed)
            }
        }
        let mut store = ResultStore::new();
        run(1, 3, &mut store);
        let mut v2 = Registry::empty();
        v2.register(Box::new(Toy2));
        let campaign = run_campaign(
            &v2,
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 3,
                ..ExecConfig::default()
            },
            &mut store,
        )
        .unwrap();
        assert_eq!(
            campaign.memoized, 0,
            "old-version results must not be served"
        );
        assert_eq!(campaign.executed, 6);
    }

    #[test]
    fn unknown_selection_errors() {
        let err = run_campaign(
            &registry(),
            &["nope".to_string()],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut ResultStore::new(),
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownScenario("nope".into()));
    }

    #[test]
    fn typoed_filter_axis_errors() {
        let err = run_campaign(
            &registry(),
            &[],
            &Filter::all().with("polcy", "lru"),
            &ExecConfig {
                threads: 1,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut ResultStore::new(),
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownFilterAxis("polcy".into()));
    }

    #[test]
    fn partial_failure_persists_completed_cells() {
        /// Errors on the cell `a=2`; succeeds elsewhere.
        struct Flaky;
        impl Scenario for Flaky {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    id: "flaky",
                    axes: vec![Axis::new("a", [1, 2, 3])],
                    ..Toy.spec()
                }
            }
            fn run(&self, params: &Params, _seed: u64) -> Result<CellResult, ScenarioError> {
                match params.get_u64("a")? {
                    2 => Err(ScenarioError::BadParam {
                        axis: "a".into(),
                        value: "2".into(),
                    }),
                    a => Ok(CellResult::new(vec![("value", a as f64)])),
                }
            }
        }
        let mut registry = Registry::empty();
        registry.register(Box::new(Flaky));
        let mut store = ResultStore::new();
        let err = run_campaign(
            &registry,
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut store,
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::BadParam { .. }));
        assert_eq!(store.len(), 2, "completed cells memoized despite the error");
    }

    #[test]
    fn shards_partition_the_campaign() {
        let full = run(2, 9, &mut ResultStore::new());
        for count in [1u32, 2, 3, 4] {
            let mut sharded: Vec<CampaignCell> = Vec::new();
            for index in 0..count {
                let slice = run_campaign_shard(
                    &registry(),
                    &[],
                    &Filter::all(),
                    &ExecConfig {
                        threads: 2,
                        seed: 9,
                        ..ExecConfig::default()
                    },
                    &mut ResultStore::new(),
                    Some(Shard::new(index, count).unwrap()),
                )
                .unwrap();
                sharded.extend(slice.cells);
            }
            assert_eq!(sharded.len(), full.cells.len(), "count {count} covers");
            // Same multiset of cells (shard order permutes the list).
            let key = |c: &CampaignCell| (c.scenario.clone(), c.params.key());
            let mut a: Vec<_> = sharded.iter().map(key).collect();
            let mut b: Vec<_> = full.cells.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "count {count} is a permutation");
        }
    }

    #[test]
    fn invalid_shards_are_rejected() {
        assert!(Shard::new(0, 0).is_err());
        assert!(Shard::new(3, 3).is_err());
        assert!(Shard::new(2, 3).is_ok());
        let err = run_campaign_shard(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut ResultStore::new(),
            Some(Shard { index: 5, count: 2 }),
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Dist(_)));
    }

    #[test]
    fn malformed_fingerprints_error_instead_of_panicking() {
        for bad in ["", "xyz", "123", "zzzzzzzzzzzzzzzz", "0123456789abcde-"] {
            assert!(
                matches!(shard_of(bad, 4), Err(ScenarioError::Dist(_))),
                "`{bad}` must be rejected"
            );
            let shard = Shard::new(0, 4).unwrap();
            assert!(shard.owns(bad).is_err());
        }
        assert!(shard_of("0123456789abcdef", 4).is_ok());
    }

    #[test]
    fn cell_seed_is_stable_and_input_sensitive() {
        let p = Params::new(vec![("a".into(), "1".into())]);
        let s = cell_seed(5, "toy", &p);
        assert_eq!(s, cell_seed(5, "toy", &p));
        assert_ne!(s, cell_seed(6, "toy", &p));
        assert_ne!(s, cell_seed(5, "other", &p));
    }

    #[test]
    fn range_domain_sweeps_exactly_the_requested_slice() {
        let full = run(1, 4, &mut ResultStore::new());
        // The toy matrix has 6 lazy cells; split into two range calls.
        let mut store = ResultStore::new();
        let config = ExecConfig {
            threads: 2,
            seed: 4,
            ..ExecConfig::default()
        };
        let mut pieces = Vec::new();
        // A deliberate slice-of-one-range (a single chunk), not a
        // mistyped range collection.
        #[allow(clippy::single_range_in_vec_init)]
        let splits: [&[Range<usize>]; 2] = [&[0..2], &[2..4, 4..6]];
        for ranges in splits {
            let part = run_campaign_with(
                &registry(),
                &[],
                &Filter::all(),
                &config,
                &mut store,
                CellDomain::Ranges(ranges),
                ExecHooks::default(),
            )
            .unwrap();
            pieces.extend(part.cells);
        }
        assert_eq!(pieces, full.cells, "range union must equal the full sweep");
        assert_eq!(store.len(), 6);

        // Out-of-bounds, overlapping and out-of-order ranges are
        // rejected (overlap would silently duplicate cells).
        #[allow(clippy::single_range_in_vec_init)]
        let rejected: [&[Range<usize>]; 3] = [&[5..9], &[0..4, 2..6], &[4..6, 0..2]];
        for ranges in rejected {
            let err = run_campaign_with(
                &registry(),
                &[],
                &Filter::all(),
                &config,
                &mut ResultStore::new(),
                CellDomain::Ranges(ranges),
                ExecHooks::default(),
            )
            .unwrap_err();
            assert!(matches!(err, ScenarioError::Dist(_)), "{ranges:?}");
        }
    }

    #[test]
    fn hooks_observe_every_fresh_cell() {
        let seen: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let peak: AtomicUsize = AtomicUsize::new(0);
        let on_result = |fp: &str, cell: &StoredCell| {
            assert_eq!(cell.scenario, "toy");
            seen.lock().unwrap().push(fp.to_string());
        };
        let progress = |p: ExecProgress| {
            assert_eq!(p.total, 6);
            peak.fetch_max(p.executed, Ordering::Relaxed);
        };
        let timings: Mutex<Vec<(String, bool)>> = Mutex::new(Vec::new());
        let on_timing = |t: CellTiming<'_>| {
            assert_eq!(t.scenario, "toy");
            timings
                .lock()
                .unwrap()
                .push((t.fingerprint.to_string(), t.wall.is_some()));
        };
        let mut store = ResultStore::new();
        let campaign = run_campaign_with(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 3,
                seed: 1,
                ..ExecConfig::default()
            },
            &mut store,
            CellDomain::All,
            ExecHooks {
                progress: Some(&progress),
                on_result: Some(&on_result),
                on_timing: Some(&on_timing),
                obs: None,
                cancel: None,
            },
        )
        .unwrap();
        assert_eq!(campaign.executed, 6);
        assert_eq!(peak.load(Ordering::Relaxed), 6);
        let mut fps = seen.into_inner().unwrap();
        fps.sort();
        let mut stored: Vec<String> = store.iter().map(|(fp, _)| fp.to_string()).collect();
        stored.sort();
        assert_eq!(fps, stored, "the sink must see exactly the fresh cells");
        // Every fresh cell carried a measured duration.
        let mut timed = timings.into_inner().unwrap();
        assert!(timed.iter().all(|(_, fresh)| *fresh));
        timed.sort();
        assert_eq!(
            timed.iter().map(|(fp, _)| fp.clone()).collect::<Vec<_>>(),
            stored,
            "the timing sink must see exactly the fresh cells"
        );

        // A fully memoized rerun feeds the result sink nothing — and
        // the timing sink sees pure accesses (no wall clock).
        let count = AtomicUsize::new(0);
        let counting = |_: &str, _: &StoredCell| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        let hit_count = AtomicUsize::new(0);
        let counting_timing = |t: CellTiming<'_>| {
            assert!(t.wall.is_none(), "memoized hits carry no duration");
            hit_count.fetch_add(1, Ordering::Relaxed);
        };
        run_campaign_with(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 3,
                seed: 1,
                ..ExecConfig::default()
            },
            &mut store,
            CellDomain::All,
            ExecHooks {
                progress: None,
                on_result: Some(&counting),
                on_timing: Some(&counting_timing),
                obs: None,
                cancel: None,
            },
        )
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 0);
        assert_eq!(
            hit_count.load(Ordering::Relaxed),
            6,
            "every memoized cell is still an access"
        );
    }

    #[test]
    fn cancellation_persists_completed_cells_and_resumes() {
        use std::sync::atomic::AtomicBool;

        // A flag set before the run cancels before any cell executes.
        let cancel = AtomicBool::new(true);
        let mut store = ResultStore::new();
        let err = run_campaign_with(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 1,
                ..ExecConfig::default()
            },
            &mut store,
            CellDomain::All,
            ExecHooks {
                cancel: Some(&cancel),
                ..ExecHooks::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::Cancelled);
        assert!(store.is_empty());

        // Cancelling from the progress hook after the first cell: the
        // single worker finishes the cell in hand, stops pulling, and
        // the completed work is still assembled into the store.
        let cancel = AtomicBool::new(false);
        let progress = |_: ExecProgress| cancel.store(true, Ordering::Relaxed);
        let err = run_campaign_with(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 1,
                ..ExecConfig::default()
            },
            &mut store,
            CellDomain::All,
            ExecHooks {
                progress: Some(&progress),
                cancel: Some(&cancel),
                ..ExecHooks::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, ScenarioError::Cancelled);
        assert_eq!(store.len(), 1, "the in-hand cell must be persisted");

        // The rerun resumes: the persisted cell is a memo hit.
        let campaign = run_campaign_with(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 1,
                ..ExecConfig::default()
            },
            &mut store,
            CellDomain::All,
            ExecHooks::default(),
        )
        .unwrap();
        assert_eq!(campaign.memoized, 1);
        assert_eq!(campaign.executed, 5);
        assert_eq!(store.len(), 6);
    }

    fn run_reps(reps: u32, keep: bool, seed: u64, store: &mut ResultStore) -> Campaign {
        run_campaign(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed,
                replicates: reps,
                keep_replicates: keep,
            },
            store,
        )
        .unwrap()
    }

    #[test]
    fn one_replicate_is_byte_identical_to_no_replicates() {
        let mut plain_store = ResultStore::new();
        let plain = run(2, 42, &mut plain_store);
        let mut rep_store = ResultStore::new();
        let rep = run_reps(1, false, 42, &mut rep_store);
        assert_eq!(plain.cells, rep.cells);
        assert_eq!(
            plain_store.to_json().pretty(),
            rep_store.to_json().pretty(),
            "replicates=1 must not perturb the store"
        );
    }

    #[test]
    fn zero_replicates_are_rejected() {
        let err = run_campaign(
            &registry(),
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
                replicates: 0,
                keep_replicates: false,
            },
            &mut ResultStore::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("replicates"), "got: {err}");
    }

    #[test]
    fn replicated_campaign_folds_to_one_distribution_cell_per_base() {
        let mut store = ResultStore::new();
        let campaign = run_reps(8, false, 7, &mut store);
        // 6 base cells, each folded from 8 replicates.
        assert_eq!(campaign.cells.len(), 6);
        assert_eq!(campaign.executed, 48);
        assert_eq!(store.len(), 6, "raw replicates dropped by default");
        for cell in &campaign.cells {
            assert!(cell.params.get("rep").is_err(), "fold keys base params");
            let names: Vec<&str> = cell
                .result
                .metrics
                .iter()
                .map(|(n, _)| n.as_str())
                .collect();
            let expected: Vec<String> = crate::expect::DERIVED_SUFFIXES
                .iter()
                .map(|s| format!("value.{s}"))
                .collect();
            assert_eq!(names, expected, "derived columns in declaration order");
            assert_eq!(cell.result.metric("value.n"), Some(8.0));
            // Toy's metric depends on the seed, so 8 distinct replicate
            // seeds must spread the distribution.
            let std = cell.result.metric("value.std").unwrap();
            assert!(std > 0.0, "replicate seeds must vary the metric");
            let (mean, p05, p95) = (
                cell.result.metric("value.mean").unwrap(),
                cell.result.metric("value.p05").unwrap(),
                cell.result.metric("value.p95").unwrap(),
            );
            assert!(p05 <= mean && mean <= p95, "{p05} <= {mean} <= {p95}");
        }
    }

    #[test]
    fn keep_replicates_retains_raw_cells_and_memoizes_reruns() {
        let mut store = ResultStore::new();
        let first = run_reps(4, true, 3, &mut store);
        assert_eq!(first.executed, 24);
        assert_eq!(store.len(), 24 + 6, "raws plus one fold per base");
        // Rerun: every raw replicate resolves from the store.
        let second = run_reps(4, true, 3, &mut store);
        assert_eq!(second.executed, 0);
        assert_eq!(second.memoized, 24);
        assert_eq!(
            first
                .cells
                .iter()
                .map(|c| (&c.params, c.seed, &c.result))
                .collect::<Vec<_>>(),
            second
                .cells
                .iter()
                .map(|c| (&c.params, c.seed, &c.result))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fold_cell_is_keyed_by_the_base_fingerprint() {
        let mut plain_store = ResultStore::new();
        run(1, 11, &mut plain_store);
        let mut rep_store = ResultStore::new();
        run_reps(4, false, 11, &mut rep_store);
        let plain_fps: Vec<&str> = plain_store.iter().map(|(fp, _)| fp).collect();
        let rep_fps: Vec<&str> = rep_store.iter().map(|(fp, _)| fp).collect();
        assert_eq!(plain_fps, rep_fps, "fold cells reuse the base identity");
        assert!(rep_store.iter().all(|(_, c)| c.fold));
        assert!(plain_store.iter().all(|(_, c)| !c.fold));
    }

    #[test]
    fn replicates_reject_scenarios_declaring_the_rep_axis() {
        struct RepAxis;
        impl Scenario for RepAxis {
            fn spec(&self) -> ScenarioSpec {
                ScenarioSpec {
                    id: "rep-axis",
                    version: 1,
                    title: "rep collision",
                    source_crate: "harness",
                    property: "p",
                    uncertainty: "u",
                    quality: "q",
                    catalog_id: None,
                    content_digest: None,
                    axes: vec![Axis::new("rep", [1, 2])],
                    headline_metric: "v",
                    smaller_is_better: true,
                }
            }
            fn run(&self, _: &Params, _: u64) -> Result<CellResult, ScenarioError> {
                Ok(CellResult::new(vec![("v", 0.0)]))
            }
        }
        let mut r = Registry::empty();
        r.register(Box::new(RepAxis));
        let err = run_campaign(
            &r,
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
                replicates: 2,
                keep_replicates: false,
            },
            &mut ResultStore::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("rep"), "got: {err}");
        // Without replication the axis name is unreserved.
        run_campaign(
            &r,
            &[],
            &Filter::all(),
            &ExecConfig {
                threads: 1,
                seed: 0,
                ..ExecConfig::default()
            },
            &mut ResultStore::new(),
        )
        .unwrap();
    }

    #[test]
    fn replicated_filters_keep_whole_groups() {
        let mut store = ResultStore::new();
        let campaign = run_campaign(
            &registry(),
            &[],
            &Filter::all().with("a", "2"),
            &ExecConfig {
                threads: 2,
                seed: 5,
                replicates: 4,
                keep_replicates: false,
            },
            &mut store,
        )
        .unwrap();
        assert_eq!(campaign.cells.len(), 2, "two base cells survive the filter");
        assert_eq!(campaign.executed, 8);
        assert!(campaign
            .cells
            .iter()
            .all(|c| c.params.get("a").unwrap() == "2"));
    }
}
