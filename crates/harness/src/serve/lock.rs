//! The `store.json.lock` pidfile protocol.
//!
//! A live `campaign serve` daemon owns its store exclusively: it holds
//! the cells hot in memory and checkpoints them on its own schedule, so
//! a concurrent `gc` or `merge` rewriting (or even reading) the file
//! would race the daemon's journal and checkpoints. The lock is a
//! sidecar created with `O_EXCL` (the same atomic-create primitive as
//! the dist steal leases) holding the owner's pid, so every other
//! command can tell *who* holds the store — and, crucially, whether
//! that owner is still alive.
//!
//! Stale locks never wedge a store: a lock whose pid is dead (the
//! daemon was SIGKILLed, the machine rebooted) is detected via
//! `/proc/<pid>` and broken automatically by the next
//! [`StoreLock::acquire`], while read-side checks
//! ([`refuse_if_live`]) report it as ignorable with the remediation
//! spelled out instead of refusing forever.

use crate::json::Json;
use crate::scenario::ScenarioError;
use crate::store::sync_dir;
use std::path::{Path, PathBuf};

/// The lock sidecar of a store: `store.json` → `store.json.lock`.
pub fn lock_path(store: &Path) -> PathBuf {
    let mut name = store.file_name().unwrap_or_default().to_os_string();
    name.push(".lock");
    store.with_file_name(name)
}

/// What a lock file says about its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockInfo {
    /// The owning process id (`0` for an unreadable/torn lock file,
    /// which only a dead owner can leave behind).
    pub pid: u32,
    /// The subcommand that took the lock (diagnostics only).
    pub cmd: String,
}

/// The observed state of a store's lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockState {
    /// No lock file.
    Unlocked,
    /// Locked by a process that is still running.
    Live(LockInfo),
    /// Locked by a dead process (or the lock file is torn) — safe to
    /// break.
    Stale(LockInfo),
}

/// Whether `pid` names a running process. Conservative off Linux: a
/// pid we cannot probe is treated as alive, so an unbreakable lock is
/// at worst a refusal with remediation, never a broken live lock.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Reads and classifies the lock beside `store`, probing the owner pid
/// for liveness. A lock file that exists but does not parse is
/// classified stale: only a crashed owner leaves a torn lock behind.
pub fn inspect(store: &Path) -> Result<LockState, ScenarioError> {
    let path = lock_path(store);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LockState::Unlocked),
        Err(e) => {
            return Err(ScenarioError::Store(format!(
                "read {}: {e}",
                path.display()
            )))
        }
    };
    let info = Json::parse(text.trim()).ok().and_then(|doc| {
        Some(LockInfo {
            pid: doc.get("pid").and_then(Json::as_f64)? as u32,
            cmd: doc
                .get("cmd")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
        })
    });
    Ok(match info {
        None => LockState::Stale(LockInfo {
            pid: 0,
            cmd: "?".to_string(),
        }),
        Some(info) if pid_alive(info.pid) => LockState::Live(info),
        Some(info) => LockState::Stale(info),
    })
}

/// Refuses `op` (gc, merge, …) when a live daemon holds `store`;
/// returns the stale lock it is safe to ignore, if any, so the caller
/// can print the remediation note.
pub fn refuse_if_live(store: &Path, op: &str) -> Result<Option<LockInfo>, ScenarioError> {
    match inspect(store)? {
        LockState::Unlocked => Ok(None),
        LockState::Stale(info) => Ok(Some(info)),
        LockState::Live(info) => Err(ScenarioError::Store(format!(
            "refusing to {op} {}: a live `campaign {}` (pid {}) holds {} — \
             send it the shutdown op (or stop the process) and retry; \
             a dead owner's lock is detected as stale and never blocks",
            store.display(),
            info.cmd,
            info.pid,
            lock_path(store).display(),
        ))),
    }
}

/// An exclusive hold on a store, released on drop (best-effort) or via
/// [`StoreLock::release`] (checked).
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
    armed: bool,
}

impl StoreLock {
    /// Takes the lock beside `store` for subcommand `cmd`. A stale
    /// lock (dead pid or torn file) is broken automatically and
    /// returned so the caller can report it; a live lock refuses with
    /// the owner named and the remediation spelled out.
    pub fn acquire(
        store: &Path,
        cmd: &str,
    ) -> Result<(StoreLock, Option<LockInfo>), ScenarioError> {
        let path = lock_path(store);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| ScenarioError::Store(format!("mkdir {}: {e}", dir.display())))?;
        }
        let mut broke = None;
        // Two take attempts with at most one stale-break between them:
        // losing the post-break re-create race means a *live* process
        // took the lock, which the second attempt then reports.
        for attempt in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => {
                    let doc = Json::Obj(vec![
                        ("pid".to_string(), Json::Num(std::process::id() as f64)),
                        ("cmd".to_string(), Json::str(cmd)),
                    ]);
                    let mut text = doc.compact();
                    text.push('\n');
                    std::io::Write::write_all(&mut &file, text.as_bytes())
                        .and_then(|()| file.sync_all())
                        .map_err(|e| {
                            ScenarioError::Store(format!("write {}: {e}", path.display()))
                        })?;
                    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                        sync_dir(dir)?;
                    }
                    return Ok((StoreLock { path, armed: true }, broke));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match inspect(store)? {
                        // Raced a release between create and inspect.
                        LockState::Unlocked => continue,
                        LockState::Live(info) => {
                            return Err(ScenarioError::Store(format!(
                                "store {} is held by a live `campaign {}` (pid {}) — \
                                 send it the shutdown op (or stop the process) and retry; \
                                 a dead owner's lock is broken automatically",
                                store.display(),
                                info.cmd,
                                info.pid,
                            )))
                        }
                        LockState::Stale(info) if attempt == 0 => {
                            std::fs::remove_file(&path).map_err(|e| {
                                ScenarioError::Store(format!(
                                    "break stale lock {}: {e}",
                                    path.display()
                                ))
                            })?;
                            broke = Some(info);
                        }
                        LockState::Stale(_) => break,
                    }
                }
                Err(e) => {
                    return Err(ScenarioError::Store(format!(
                        "create {}: {e}",
                        path.display()
                    )))
                }
            }
        }
        Err(ScenarioError::Store(format!(
            "lock {} is contended: another process keeps re-creating it",
            path.display()
        )))
    }

    /// The lock file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the lock file, surfacing failures (drop only removes
    /// best-effort).
    pub fn release(mut self) -> Result<(), ScenarioError> {
        self.armed = false;
        std::fs::remove_file(&self.path)
            .map_err(|e| ScenarioError::Store(format!("unlock {}: {e}", self.path.display())))
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        if self.armed {
            std::fs::remove_file(&self.path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("harness-lock-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_round_trips() {
        let dir = scratch("round");
        let store = dir.join("store.json");
        assert_eq!(inspect(&store).unwrap(), LockState::Unlocked);
        let (lock, broke) = StoreLock::acquire(&store, "serve").unwrap();
        assert!(broke.is_none());
        // Our own pid is live, so a second taker must refuse.
        let err = StoreLock::acquire(&store, "serve").unwrap_err();
        assert!(err.to_string().contains("shutdown"), "{err}");
        assert!(matches!(inspect(&store).unwrap(), LockState::Live(_)));
        assert!(refuse_if_live(&store, "gc").is_err());
        lock.release().unwrap();
        assert_eq!(inspect(&store).unwrap(), LockState::Unlocked);
        assert_eq!(refuse_if_live(&store, "gc").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_and_torn_locks_are_broken_not_fatal() {
        let dir = scratch("stale");
        let store = dir.join("store.json");
        // A pid far beyond any live process: /proc/<pid> cannot exist.
        std::fs::write(
            lock_path(&store),
            "{\"pid\":4000000000,\"cmd\":\"serve\"}\n",
        )
        .unwrap();
        assert!(matches!(inspect(&store).unwrap(), LockState::Stale(_)));
        let stale = refuse_if_live(&store, "gc").unwrap();
        assert_eq!(stale.unwrap().pid, 4_000_000_000);
        let (lock, broke) = StoreLock::acquire(&store, "serve").unwrap();
        assert_eq!(broke.unwrap().pid, 4_000_000_000);
        drop(lock);
        // A torn lock file (crash mid-write) is stale with pid 0.
        std::fs::write(lock_path(&store), "{\"pid\":40").unwrap();
        assert_eq!(
            inspect(&store).unwrap(),
            LockState::Stale(LockInfo {
                pid: 0,
                cmd: "?".to_string()
            })
        );
        let (lock, broke) = StoreLock::acquire(&store, "gc").unwrap();
        assert_eq!(broke.unwrap().pid, 0);
        lock.release().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_releases_best_effort() {
        let dir = scratch("drop");
        let store = dir.join("store.json");
        {
            let _lock = StoreLock::acquire(&store, "serve").unwrap();
            assert!(lock_path(&store).exists());
        }
        assert!(!lock_path(&store).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
