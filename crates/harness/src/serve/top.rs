//! Rendering for `campaign top` — the live terminal view of a running
//! daemon.
//!
//! The client side (poll loop, connection handling, screen clearing)
//! lives in the `campaign` binary; this module is the pure part: given
//! the daemon's `stats`, `metrics` and `jobs` responses, produce the
//! text screen. Keeping it pure makes the renderer unit-testable with
//! synthetic responses and reusable for the one-shot `--once` mode,
//! which prints exactly one screen to stdout.

use super::SERVE_OPS;
use crate::json::Json;

/// Number of cells in a job progress bar.
const BAR_WIDTH: usize = 20;
/// Most recent jobs shown.
const MAX_JOBS: usize = 8;

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// `12µs` / `3.4ms` / `1.2s` from microseconds.
fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{}µs", us.round())
    } else if us < 1_000_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// `41s` / `12m03s` / `2h07m` from milliseconds.
fn fmt_uptime(ms: u64) -> String {
    let secs = ms / 1_000;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3_600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3_600, (secs % 3_600) / 60)
    }
}

/// `[########············]` at `done/total`.
fn progress_bar(done: f64, total: f64) -> String {
    let frac = if total > 0.0 {
        (done / total).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * BAR_WIDTH as f64).round() as usize;
    let mut bar = String::with_capacity(BAR_WIDTH + 2);
    bar.push('[');
    for i in 0..BAR_WIDTH {
        bar.push(if i < filled { '#' } else { '·' });
    }
    bar.push(']');
    bar
}

/// One full `top` screen from the daemon's `stats`, `metrics` and
/// `jobs` responses.
pub fn render(addr: &str, stats: &Json, metrics: &Json, jobs: &Json) -> String {
    let mut out = String::new();
    let uptime_ms = num(stats, "uptime_ms") as u64;
    out.push_str(&format!(
        "campaign serve — {addr}   up {}\n",
        fmt_uptime(uptime_ms)
    ));
    out.push_str(&format!(
        "cells {}   scenarios {}   qps {} (lifetime {})   requests {}   connections {}\n",
        num(stats, "cells"),
        num(stats, "scenarios"),
        num(stats, "qps"),
        num(stats, "qps_lifetime"),
        num(stats, "requests"),
        num(stats, "connections"),
    ));
    out.push('\n');

    // Endpoint latency table, protocol order, ops seen at least once.
    let histograms = metrics.get("metrics").and_then(|m| m.get("histograms"));
    out.push_str(&format!(
        "  {:<12} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
        "op", "count", "p50", "p90", "p99", "max"
    ));
    let mut any = false;
    for op in SERVE_OPS.iter().chain(std::iter::once(&"other")) {
        let name = format!("harness_serve_request_latency_seconds{{op=\"{op}\"}}");
        let Some(h) = histograms.and_then(|hs| hs.get(&name)) else {
            continue;
        };
        let count = num(h, "count");
        if count == 0.0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "  {:<12} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            op,
            count,
            fmt_us(num(h, "p50_us")),
            fmt_us(num(h, "p90_us")),
            fmt_us(num(h, "p99_us")),
            fmt_us(num(h, "max_us")),
        ));
    }
    if !any {
        out.push_str("  (no requests recorded yet)\n");
    }
    out.push('\n');

    // Jobs, newest first.
    out.push_str("jobs\n");
    let list = jobs.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
    if list.is_empty() {
        out.push_str("  (none submitted)\n");
        return out;
    }
    for job in list.iter().rev().take(MAX_JOBS) {
        let id = num(job, "job");
        let status = job.get("status").and_then(Json::as_str).unwrap_or("?");
        let done = num(job, "cells_done");
        let total = num(job, "cells_total");
        let pct = if total > 0.0 {
            (done / total * 100.0).round()
        } else {
            0.0
        };
        match status {
            "failed" => {
                let error = job.get("error").and_then(Json::as_str).unwrap_or("");
                out.push_str(&format!("  #{id:<3} {status:<9} {error}\n"));
            }
            "queued" | "dropped" => {
                out.push_str(&format!("  #{id:<3} {status:<9}\n"));
            }
            _ => {
                out.push_str(&format!(
                    "  #{id:<3} {status:<9} {} {pct:>3}%  {done}/{total} cells\n",
                    progress_bar(done, total)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Json, Json, Json) {
        let stats = Json::parse(
            r#"{"ok":true,"uptime_ms":754000,"cells":1234,"scenarios":3,"qps":118.2,
                "qps_lifetime":3.4,"requests":2510,"connections":9}"#,
        )
        .unwrap();
        let metrics = Json::parse(
            r#"{"ok":true,"metrics":{"histograms":{
                "harness_serve_request_latency_seconds{op=\"ping\"}":
                    {"count":1,"p50_us":42,"p90_us":42,"p99_us":42,"max_us":42},
                "harness_serve_request_latency_seconds{op=\"query\"}":
                    {"count":200,"p50_us":51,"p90_us":80,"p99_us":390,"max_us":1200},
                "harness_serve_request_latency_seconds{op=\"report\"}":
                    {"count":0,"p50_us":0,"p90_us":0,"p99_us":0,"max_us":0}}}}"#,
        )
        .unwrap();
        let jobs = Json::parse(
            r#"{"ok":true,"jobs":[
                {"job":1,"status":"failed","cells_done":0,"cells_total":0,
                 "error":"journal open: no such directory"},
                {"job":2,"status":"done","cells_done":230,"cells_total":230},
                {"job":3,"status":"running","cells_done":57,"cells_total":230}]}"#,
        )
        .unwrap();
        (stats, metrics, jobs)
    }

    #[test]
    fn renders_header_table_and_jobs() {
        let (stats, metrics, jobs) = sample();
        let screen = render("127.0.0.1:4100", &stats, &metrics, &jobs);
        assert!(screen.contains("campaign serve — 127.0.0.1:4100   up 12m34s"));
        assert!(screen.contains("qps 118.2 (lifetime 3.4)"));
        // Table rows in protocol order, zero-count ops hidden.
        let ping = screen.find("ping").unwrap();
        let query = screen.find("query").unwrap();
        assert!(ping < query);
        assert!(!screen.contains("report"));
        assert!(screen.contains("42µs"));
        assert!(screen.contains("1.2ms"), "{screen}");
        // Jobs newest first: running bar, done bar, failed error line.
        let running = screen.find("#3").unwrap();
        let done = screen.find("#2").unwrap();
        let failed = screen.find("#1").unwrap();
        assert!(running < done && done < failed);
        assert!(screen.contains("25%  57/230 cells"));
        assert!(screen.contains("[#####···············]"), "{screen}");
        assert!(screen.contains("[####################] 100%"));
        assert!(screen.contains("journal open: no such directory"));
    }

    #[test]
    fn renders_empty_daemon() {
        let stats = Json::parse(r#"{"ok":true,"uptime_ms":1000}"#).unwrap();
        let metrics = Json::parse(r#"{"ok":true,"metrics":{"histograms":{}}}"#).unwrap();
        let jobs = Json::parse(r#"{"ok":true,"jobs":[]}"#).unwrap();
        let screen = render("x", &stats, &metrics, &jobs);
        assert!(screen.contains("(no requests recorded yet)"));
        assert!(screen.contains("(none submitted)"));
    }

    #[test]
    fn duration_and_uptime_formatting() {
        assert_eq!(fmt_us(999.0), "999µs");
        assert_eq!(fmt_us(1_500.0), "1.5ms");
        assert_eq!(fmt_us(2_345_000.0), "2.35s");
        assert_eq!(fmt_uptime(41_000), "41s");
        assert_eq!(fmt_uptime(3_600_000), "1h00m");
    }
}
