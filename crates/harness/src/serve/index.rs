//! The hot in-memory index the daemon answers queries from.
//!
//! The store on disk is fingerprint → cell, which is perfect for
//! memoization and byte-stable checkpoints but useless for the
//! questions a service gets asked: *"the `dram-refresh` cell at
//! `rows=8,t_refresh=64` — what were its metrics?"* or *"every
//! `pipeline-domino` cell with `n` in {16,32}"*. [`StoreIndex`]
//! inverts the store once at open (and once per completed submit) into
//! scenario → axis-assignment → cells, with every axis name, axis
//! value and metric name interned to a `u32` symbol: assignments
//! become small sorted symbol vectors, so a point lookup is one BTree
//! probe and a range scan compares integers, not strings, and the
//! per-cell footprint stays flat no matter how many cells share the
//! axis vocabulary.
//!
//! An index is immutable once built. The server publishes it behind
//! `RwLock<Arc<StoreIndex>>`: readers clone the `Arc` and never block
//! a writer; a completed submit builds a fresh index from the updated
//! store and swaps the `Arc` — queries see the old cells or the new
//! cells, never a half-published state.

use crate::store::{ResultStore, StoredCell};
use std::collections::{BTreeMap, HashMap};

/// An interned string: index into the [`Interner`]'s table.
pub type Sym = u32;

/// A string interner: every distinct axis name, axis value and metric
/// name is stored once and referenced by symbol.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<String, Sym>,
    strings: Vec<String>,
}

impl Interner {
    /// Interns `s`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = self.strings.len() as Sym;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// The symbol of an already-interned string — `None` means no
    /// indexed cell ever mentioned `s`, so any lookup through it is a
    /// guaranteed miss.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym as usize]
    }

    /// An interner pre-seeded with a vocabulary, symbol ids assigned
    /// in table order — how the index adopts a binary columnar
    /// checkpoint's symbol table wholesale instead of re-hashing and
    /// re-allocating every string it already carries.
    pub fn with_vocab(vocab: Vec<String>) -> Interner {
        let map = vocab
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as Sym))
            .collect();
        Interner {
            map,
            strings: vocab,
        }
    }

    /// Distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One indexed cell: the store fingerprint (its identity everywhere
/// else in the system) plus the decoded fields a query answer needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEntry {
    /// Store fingerprint.
    pub fingerprint: String,
    /// The cell seed.
    pub seed: u64,
    /// Scenario implementation version.
    pub version: u32,
    /// Whether the cell is a replicate fold (distribution metrics
    /// derived over a replicate group) rather than a raw execution.
    pub fold: bool,
    /// `(metric symbol, value)` pairs in declaration order.
    pub metrics: Vec<(Sym, f64)>,
}

/// One scenario's slice of the index.
#[derive(Debug, Default)]
struct ScenarioIndex {
    /// Axis-name symbols in canonical (params-key) order — the order
    /// assignments are rendered back in.
    axes: Vec<Sym>,
    /// Metric-name symbols in first-seen declaration order.
    metrics: Vec<Sym>,
    /// Axis assignment (`(axis, value)` symbol pairs, sorted) → cells
    /// at those coordinates (distinct seeds/versions).
    cells: BTreeMap<Vec<(Sym, Sym)>, Vec<CellEntry>>,
}

/// The immutable query index over one snapshot of the store.
#[derive(Debug, Default)]
pub struct StoreIndex {
    interner: Interner,
    scenarios: BTreeMap<String, ScenarioIndex>,
    cells: usize,
    folds: usize,
}

/// A materialized query answer: the assignment rendered back to
/// canonical `(axis, value)` string pairs, plus the cell.
#[derive(Debug)]
pub struct IndexHit<'a> {
    /// `(axis, value)` pairs in canonical axis order.
    pub params: Vec<(&'a str, &'a str)>,
    /// The indexed cell.
    pub cell: &'a CellEntry,
}

impl StoreIndex {
    /// Inverts a store snapshot. Cells whose params key does not parse
    /// as `axis=value,...` are indexed under the empty assignment
    /// rather than dropped (a query for them still finds them via
    /// range scans).
    pub fn build(store: &ResultStore) -> StoreIndex {
        StoreIndex::build_with_vocab(store, None)
    }

    /// [`StoreIndex::build`] seeded with a pre-interned vocabulary —
    /// the symbol table of the binary columnar checkpoint the store
    /// was just loaded from. Every axis name, axis value and metric
    /// name the file interned resolves without a fresh allocation;
    /// strings the vocabulary misses (e.g. journal-replayed cells)
    /// intern on top as usual.
    pub fn build_with_vocab(store: &ResultStore, vocab: Option<Vec<String>>) -> StoreIndex {
        let mut index = StoreIndex {
            interner: match vocab {
                Some(vocab) => Interner::with_vocab(vocab),
                None => Interner::default(),
            },
            ..StoreIndex::default()
        };
        for (fp, cell) in store.iter() {
            index.add(fp, cell);
        }
        index
    }

    fn add(&mut self, fp: &str, cell: &StoredCell) {
        let scenario = self.scenarios.entry(cell.scenario.clone()).or_default();
        let mut key = Vec::new();
        for pair in cell.params_key.split(',').filter(|p| !p.is_empty()) {
            let (axis, value) = pair.split_once('=').unwrap_or((pair, ""));
            let axis = self.interner.intern(axis);
            let value = self.interner.intern(value);
            if !scenario.axes.contains(&axis) {
                scenario.axes.push(axis);
            }
            key.push((axis, value));
        }
        key.sort_unstable();
        let mut metrics = Vec::with_capacity(cell.result.metrics.len());
        for (name, value) in &cell.result.metrics {
            let name = self.interner.intern(name);
            if !scenario.metrics.contains(&name) {
                scenario.metrics.push(name);
            }
            metrics.push((name, *value));
        }
        scenario.cells.entry(key).or_default().push(CellEntry {
            fingerprint: fp.to_string(),
            seed: cell.seed,
            version: cell.version,
            fold: cell.fold,
            metrics,
        });
        self.cells += 1;
        if cell.fold {
            self.folds += 1;
        }
    }

    /// Total indexed cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// How many indexed cells are replicate folds (distribution cells).
    pub fn folds(&self) -> usize {
        self.folds
    }

    /// Indexed scenario ids, sorted.
    pub fn scenarios(&self) -> impl Iterator<Item = &str> {
        self.scenarios.keys().map(String::as_str)
    }

    /// Distinct strings behind every axis name/value and metric name.
    pub fn interned(&self) -> usize {
        self.interner.len()
    }

    /// A scenario's axis names in canonical order (`None`: no cell of
    /// that scenario is indexed).
    pub fn axes(&self, scenario: &str) -> Option<Vec<&str>> {
        let scenario = self.scenarios.get(scenario)?;
        Some(
            scenario
                .axes
                .iter()
                .map(|&a| self.interner.resolve(a))
                .collect(),
        )
    }

    /// A scenario's metric names in first-seen order.
    pub fn metrics(&self, scenario: &str) -> Option<Vec<&str>> {
        let scenario = self.scenarios.get(scenario)?;
        Some(
            scenario
                .metrics
                .iter()
                .map(|&m| self.interner.resolve(m))
                .collect(),
        )
    }

    /// The metric name behind a cell's metric symbol.
    pub fn metric_name(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Point lookup: the cells at exactly the given axis assignment.
    /// Any axis or value the index has never seen is a guaranteed miss
    /// (`None`), as is a partial assignment.
    pub fn query_point(
        &self,
        scenario: &str,
        params: &[(String, String)],
    ) -> Option<Vec<IndexHit<'_>>> {
        let scenario_index = self.scenarios.get(scenario)?;
        let mut key = Vec::with_capacity(params.len());
        for (axis, value) in params {
            key.push((self.interner.lookup(axis)?, self.interner.lookup(value)?));
        }
        key.sort_unstable();
        let entries = scenario_index.cells.get(&key)?;
        let params = self.render(scenario_index, &key);
        Some(
            entries
                .iter()
                .map(|cell| IndexHit {
                    params: params.clone(),
                    cell,
                })
                .collect(),
        )
    }

    /// Range scan: every cell of `scenario` whose assignment satisfies
    /// all `clauses` — each clause is an axis plus the accepted values
    /// (an OR within the clause, AND across clauses; no clauses = the
    /// whole scenario). An axis the index has never seen yields an
    /// error naming the scenario's real axes; an unseen *value* just
    /// matches nothing.
    pub fn query_range(
        &self,
        scenario: &str,
        clauses: &[(String, Vec<String>)],
    ) -> Result<Vec<IndexHit<'_>>, String> {
        let Some(scenario_index) = self.scenarios.get(scenario) else {
            return Err(format!(
                "no indexed cells for scenario `{scenario}` (known: {})",
                self.scenarios().collect::<Vec<_>>().join(", "),
            ));
        };
        let mut compiled = Vec::with_capacity(clauses.len());
        for (axis, values) in clauses {
            let axis_sym = self
                .interner
                .lookup(axis)
                .filter(|a| scenario_index.axes.contains(a));
            let Some(axis_sym) = axis_sym else {
                return Err(format!(
                    "scenario `{scenario}` has no axis `{axis}` (axes: {})",
                    self.axes(scenario).unwrap_or_default().join(", "),
                ));
            };
            let accepted: Vec<Sym> = values
                .iter()
                .filter_map(|v| self.interner.lookup(v))
                .collect();
            compiled.push((axis_sym, accepted));
        }
        let mut hits = Vec::new();
        for (key, entries) in &scenario_index.cells {
            let matches = compiled
                .iter()
                .all(|(axis, accepted)| key.iter().any(|(a, v)| a == axis && accepted.contains(v)));
            if !matches {
                continue;
            }
            for cell in entries {
                hits.push(IndexHit {
                    params: self.render(scenario_index, key),
                    cell,
                });
            }
        }
        // Hit order must not depend on symbol-id assignment — an
        // interner seeded from a binary checkpoint's table numbers
        // strings differently than a fresh one, which would reorder
        // the sym-keyed map. Sort by the rendered canonical
        // assignment instead, fingerprint as the tiebreak.
        hits.sort_by(|a, b| {
            a.params
                .cmp(&b.params)
                .then_with(|| a.cell.fingerprint.cmp(&b.cell.fingerprint))
        });
        Ok(hits)
    }

    /// Renders a sorted symbol assignment back to canonical-axis-order
    /// string pairs.
    fn render<'a>(
        &'a self,
        scenario: &ScenarioIndex,
        key: &[(Sym, Sym)],
    ) -> Vec<(&'a str, &'a str)> {
        let mut pairs: Vec<(usize, &str, &str)> = key
            .iter()
            .map(|&(axis, value)| {
                let position = scenario
                    .axes
                    .iter()
                    .position(|&a| a == axis)
                    .unwrap_or(usize::MAX);
                (
                    position,
                    self.interner.resolve(axis),
                    self.interner.resolve(value),
                )
            })
            .collect();
        pairs.sort_by_key(|&(position, ..)| position);
        pairs
            .into_iter()
            .map(|(_, axis, value)| (axis, value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CellResult, Params};

    fn store() -> ResultStore {
        let mut store = ResultStore::new();
        for (n, way) in [("16", "a"), ("16", "b"), ("32", "a")] {
            let params = Params::new(vec![("n".into(), n.into()), ("way".into(), way.into())]);
            store.insert(
                "s",
                1,
                &params,
                7,
                CellResult::new(vec![("m", n.len() as f64), ("k", 1.0)]),
            );
        }
        store.insert(
            "t",
            2,
            &Params::new(vec![("x".into(), "16".into())]),
            9,
            CellResult::new(vec![("m", 5.0)]),
        );
        store
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let index = StoreIndex::build(&store());
        assert_eq!(index.cells(), 4);
        assert_eq!(index.scenarios().collect::<Vec<_>>(), ["s", "t"]);
        assert_eq!(index.axes("s").unwrap(), ["n", "way"]);
        assert_eq!(index.metrics("s").unwrap(), ["m", "k"]);

        // Order of the query params must not matter.
        let params = vec![
            ("way".to_string(), "b".to_string()),
            ("n".to_string(), "16".to_string()),
        ];
        let hits = index.query_point("s", &params).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].params, [("n", "16"), ("way", "b")]);
        assert_eq!(hits[0].cell.seed, 7);
        assert_eq!(index.metric_name(hits[0].cell.metrics[0].0), "m");

        // Unknown value, unknown axis, partial assignment: all misses.
        let miss = vec![
            ("n".to_string(), "64".to_string()),
            ("way".to_string(), "a".to_string()),
        ];
        assert!(index.query_point("s", &miss).is_none());
        let miss = vec![("n".to_string(), "16".to_string())];
        assert!(
            index.query_point("s", &miss).is_none(),
            "partial assignment"
        );
        assert!(index.query_point("nope", &[]).is_none());
    }

    #[test]
    fn range_scan_filters_by_clause() {
        let index = StoreIndex::build(&store());
        let all = index.query_range("s", &[]).unwrap();
        assert_eq!(all.len(), 3);
        let n16 = index
            .query_range("s", &[("n".to_string(), vec!["16".to_string()])])
            .unwrap();
        assert_eq!(n16.len(), 2);
        let narrowed = index
            .query_range(
                "s",
                &[
                    ("n".to_string(), vec!["16".to_string(), "32".to_string()]),
                    ("way".to_string(), vec!["a".to_string()]),
                ],
            )
            .unwrap();
        assert_eq!(narrowed.len(), 2);
        // Unknown value matches nothing; unknown axis names the axes.
        let none = index
            .query_range("s", &[("n".to_string(), vec!["64".to_string()])])
            .unwrap();
        assert!(none.is_empty());
        let err = index
            .query_range("s", &[("zoom".to_string(), vec!["1".to_string()])])
            .unwrap_err();
        assert!(err.contains("axes: n, way"), "{err}");
        // An axis of *another* scenario is unknown here too.
        let err = index
            .query_range("s", &[("x".to_string(), vec!["16".to_string()])])
            .unwrap_err();
        assert!(err.contains("no axis `x`"), "{err}");
        let err = index.query_range("nope", &[]).unwrap_err();
        assert!(err.contains("known: s, t"), "{err}");
    }

    #[test]
    fn interning_shares_the_vocabulary() {
        let index = StoreIndex::build(&store());
        // 4 cells × (2-3 strings each) collapse to the distinct set:
        // n, 16, 32, way, a, b, m, k, x.
        assert_eq!(index.interned(), 9);
    }
}
