//! `harness::serve` — the always-on campaign query/submit daemon.
//!
//! Everything below the CLI so far is batch: run, checkpoint, exit.
//! This module keeps the result store *resident*: `campaign serve`
//! opens the store resumably (journal replay included), inverts it
//! into a hot [`index::StoreIndex`] (scenario → axis assignment →
//! cells, axis strings interned), and answers point/range metric
//! queries, report renders and campaign submissions over a
//! line-delimited JSON protocol on plain TCP — one compact JSON
//! request per line, one compact JSON response per line, std only
//! (thread-per-connection behind a bounded accept pool; the
//! environment is offline, so no async runtime).
//!
//! The division of labor under concurrency:
//!
//! * **Queries** read an `Arc` snapshot of the index and never touch
//!   the store or its lock — a running submit cannot stall them.
//! * **Submits** enqueue to a single background scheduler thread that
//!   runs each campaign on the existing streaming executor
//!   ([`crate::exec::run_campaign_with`]) with crash-resume journaling
//!   ([`crate::store::CompactingJournal`], so week-long submit streams
//!   compact mid-run), checkpoints, and atomically publishes a fresh
//!   index — readers see the old cells or the new cells, never a
//!   half-built state.
//! * **Shutdown** is graceful: stop accepting, drain in-flight
//!   connections, cancel any running job cooperatively (its completed
//!   cells are journaled, so a resubmit resumes), checkpoint, fsync,
//!   release the [`lock::StoreLock`].
//!
//! Because a submitted campaign runs on the same executor, journal and
//! checkpoint writer as a batch `campaign run`, the store a daemon
//! leaves behind is byte-identical to the batch run's — the invariant
//! the process-level suite and the CI serve gate pin.
//!
//! The whole request path is observable ([`crate::obs`]): connections
//! get `serve/accept` spans, requests `serve/request` spans, submitted
//! campaigns `serve/submit_run` spans, and every point lookup bumps a
//! `serve/query_hit` or `serve/query_miss` counter.
//!
//! On top of the spans sits the steady-state layer
//! ([`crate::obs::metrics`]): every request records its latency into a
//! per-op log-bucketed histogram and a sliding request-rate window, the
//! scheduler publishes per-job progress gauges, and slow requests land
//! in a bounded ring. Three ops expose it — `metrics` (compact JSON +
//! Prometheus text exposition), `jobs` (per-job status, progress and
//! error strings), and `slowlog` — all purely observational: recording
//! never touches the store, so the byte-identity invariant holds with
//! metrics always on.

pub mod index;
pub mod lock;
pub mod top;

use crate::exec::{run_campaign_with, CellDomain, ExecConfig, ExecHooks, ExecProgress};
use crate::gen::{GenOptions, DEFAULT_CORPUS_SIZE};
use crate::json::Json;
use crate::matrix::Filter;
use crate::obs::metrics::{Counter, Histogram, Metrics, RateWindow, RATE_WINDOW_SECS};
use crate::obs::{monotonic_ns, Obs};
use crate::registry::Registry;
use crate::report;
use crate::scenario::{CellResult, Params, ScenarioError};
use crate::store::{CompactingJournal, ResultStore, StoredCell};
use index::StoreIndex;
use lock::{LockInfo, StoreLock};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Every protocol op, in dispatch order. Each gets its own latency
/// histogram and request counter; unrecognized ops share an extra
/// `other` slot.
pub const SERVE_OPS: [&str; 10] = [
    "ping",
    "stats",
    "query",
    "query_range",
    "report",
    "submit",
    "metrics",
    "jobs",
    "slowlog",
    "shutdown",
];

/// Slot index for unknown ops / unparseable requests.
const OP_OTHER: usize = SERVE_OPS.len();

/// Terminal job records kept for the `jobs` op before the oldest are
/// evicted.
const JOB_HISTORY: usize = 64;

/// Slow requests kept in the ring buffer.
const SLOWLOG_CAP: usize = 64;

/// Request payload bytes kept per slowlog entry.
const SLOWLOG_PAYLOAD: usize = 128;

/// Daemon tuning knobs (the `campaign serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` means an ephemeral port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Connections served concurrently; further accepts queue in the
    /// listener backlog until a slot frees.
    pub accept_pool: usize,
    /// Executor threads for submitted campaigns.
    pub exec_threads: usize,
    /// Journal fsync batch for submitted campaigns (the batch `run`
    /// `--checkpoint-every` knob).
    pub checkpoint_every: usize,
    /// Fold the journal into the checkpoint whenever it exceeds this
    /// many lines mid-run (`--compact-journal-over`).
    pub compact_journal_over: Option<usize>,
    /// Requests slower than this land in the slowlog ring
    /// (`--slowlog-over-us`).
    pub slowlog_over_us: u64,
    /// Discard all metric recordings (the registry still answers, all
    /// zeros). Exists only so `campaign bench` can measure the
    /// recording overhead against a no-op sink; operational daemons
    /// keep metrics on.
    pub metrics_noop: bool,
    /// Suppress per-job stderr notes.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            accept_pool: 8,
            exec_threads: 4,
            checkpoint_every: 16,
            compact_journal_over: None,
            slowlog_over_us: 10_000,
            metrics_noop: false,
            quiet: false,
        }
    }
}

/// One queued campaign submission (the `submit` op's payload).
#[derive(Debug, Clone)]
struct JobSpec {
    id: u64,
    scenarios: Vec<String>,
    filters: Vec<String>,
    seed: u64,
    corpus_size: Option<u32>,
    /// Replicates per base cell; the completed full-domain run folds
    /// them into distribution metrics exactly like `run --replicates`.
    replicates: Option<u32>,
    keep_replicates: bool,
}

/// Where a job is in its lifecycle, as reported by the `jobs` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    Dropped,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Dropped => "dropped",
        }
    }

    fn terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Live progress of one job: the scheduler's `ExecHooks::progress`
/// callback stores into these cells from worker threads, and the
/// `stats`/`jobs` ops read them without taking the job lock for long.
#[derive(Debug, Default)]
struct JobProgress {
    /// Cells completed so far (fresh + memoized).
    cells_done: AtomicU64,
    /// Lazy cells in the job's domain (0 until the first heartbeat).
    cells_total: AtomicU64,
    /// Wall-clock start (`telemetry::now_ms`); 0 while queued.
    started_ms: AtomicU64,
}

/// Everything the `jobs` op can say about one submission.
#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    /// The error string of a failed run (previously stderr-only).
    error: Option<String>,
    progress: Arc<JobProgress>,
}

/// Scheduler queue + lifetime job accounting, under one lock. Records
/// persist past completion (bounded: the oldest terminal records are
/// evicted past [`JOB_HISTORY`]).
#[derive(Debug, Default)]
struct JobState {
    queued: VecDeque<u64>,
    records: BTreeMap<u64, JobRecord>,
    running: Option<u64>,
    done: u64,
    failed: u64,
    cancelled: u64,
    dropped: u64,
    next_id: u64,
}

impl JobState {
    /// Move a record to a terminal status and keep history bounded.
    fn finish(&mut self, id: u64, status: JobStatus, error: Option<String>) {
        if let Some(record) = self.records.get_mut(&id) {
            record.status = status;
            record.error = error;
        }
        while self.records.len() > JOB_HISTORY {
            let Some(oldest) = self
                .records
                .iter()
                .find(|(_, r)| r.status.terminal())
                .map(|(&id, _)| id)
            else {
                break;
            };
            self.records.remove(&oldest);
        }
    }
}

/// One slow request, as kept by the bounded slowlog ring.
#[derive(Debug, Clone)]
struct SlowEntry {
    op: String,
    duration_us: u64,
    at_ms: u64,
    payload: String,
}

/// The daemon's steady-state instruments: one latency histogram and
/// request counter per protocol op (plus an `other` slot), sliding
/// request/query rate windows, and gauges refreshed at scrape time.
/// Recording is wait-free; `noop` turns it into a benchmark baseline.
struct ServeMetrics {
    registry: Metrics,
    noop: bool,
    op_latency: Vec<Arc<Histogram>>,
    op_requests: Vec<Arc<Counter>>,
    request_rate: Arc<RateWindow>,
    query_rate: Arc<RateWindow>,
}

impl ServeMetrics {
    fn new(noop: bool) -> ServeMetrics {
        let registry = Metrics::new();
        let mut op_latency = Vec::with_capacity(SERVE_OPS.len() + 1);
        let mut op_requests = Vec::with_capacity(SERVE_OPS.len() + 1);
        for op in SERVE_OPS.iter().copied().chain(std::iter::once("other")) {
            op_latency.push(registry.histogram(&format!(
                "harness_serve_request_latency_seconds{{op=\"{op}\"}}"
            )));
            op_requests
                .push(registry.counter(&format!("harness_serve_requests_total{{op=\"{op}\"}}")));
        }
        let request_rate = registry.rate_window("harness_serve_request_rate");
        let query_rate = registry.rate_window("harness_serve_query_rate");
        ServeMetrics {
            registry,
            noop,
            op_latency,
            op_requests,
            request_rate,
            query_rate,
        }
    }

    /// Slot index for an op name ([`OP_OTHER`] for anything unknown).
    fn slot_of(op: &str) -> usize {
        SERVE_OPS.iter().position(|&o| o == op).unwrap_or(OP_OTHER)
    }

    /// Record one finished request: latency into the op's histogram,
    /// one tick into the rate windows.
    fn record_request(&self, slot: usize, dur_ns: u64, now_ns: u64) {
        if self.noop {
            return;
        }
        self.op_latency[slot].record_ns(dur_ns);
        self.op_requests[slot].inc();
        self.request_rate.record_at(now_ns);
        if SERVE_OPS.get(slot) == Some(&"query") {
            self.query_rate.record_at(now_ns);
        }
    }
}

/// Shared state of a running daemon.
struct ServerInner {
    store_path: PathBuf,
    options: ServeOptions,
    /// The published query index: readers clone the `Arc`, a completed
    /// submit swaps it.
    index: RwLock<Arc<StoreIndex>>,
    /// The authoritative store. Held by the scheduler for the length
    /// of a submit run; the request path never takes it.
    store: Mutex<ResultStore>,
    /// Spec metadata for report joins and submit validation (identical
    /// ids regardless of gen options).
    registry: Registry,
    obs: Option<Obs>,
    /// Steady-state instruments (the `metrics` op's registry).
    metrics: ServeMetrics,
    /// Bounded ring of requests slower than `slowlog_over_us`.
    slowlog: Mutex<VecDeque<SlowEntry>>,
    start_ns: u64,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    /// Cooperative cancel for the executor inside a running submit.
    cancel: AtomicBool,
    jobs: Mutex<JobState>,
    jobs_signal: Condvar,
    /// Free connection slots (bounded accept pool).
    pool: Mutex<usize>,
    pool_signal: Condvar,
    active_connections: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    query_hits: AtomicU64,
    query_misses: AtomicU64,
    submits: AtomicU64,
}

/// Final tallies of a daemon's lifetime, returned by
/// [`ServerHandle::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Cells in the final checkpointed store.
    pub cells: usize,
    /// Connections accepted.
    pub connections: u64,
    /// Requests handled.
    pub requests: u64,
    /// Point queries (`query` ops) answered.
    pub queries: u64,
    /// Point queries that hit an indexed assignment.
    pub query_hits: u64,
    /// Point queries that missed.
    pub query_misses: u64,
    /// Campaigns submitted.
    pub submits: u64,
    /// Submitted campaigns completed.
    pub jobs_done: u64,
    /// Submitted campaigns that errored.
    pub jobs_failed: u64,
    /// Submitted campaigns cancelled by shutdown mid-run.
    pub jobs_cancelled: u64,
    /// Queued campaigns dropped unstarted by shutdown.
    pub jobs_dropped: u64,
    /// Wall-clock uptime.
    pub uptime_ms: u64,
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Takes the store lock, opens the store resumably, builds the hot
    /// index, binds the listener and starts the accept + scheduler
    /// threads. The daemon then runs until a `shutdown` op (or
    /// [`ServerHandle::shutdown`]); call [`ServerHandle::wait`] to
    /// block until then.
    pub fn bind(
        store_path: &Path,
        options: ServeOptions,
        obs: Option<Obs>,
    ) -> Result<ServerHandle, ScenarioError> {
        let (store_lock, broke_stale_lock) = StoreLock::acquire(store_path, "serve")?;
        let (opened, replayed) = ResultStore::open_resumable_full(store_path, obs.as_ref())?;
        // A binary columnar checkpoint ships its symbol table; the
        // index adopts it wholesale instead of re-interning.
        let index = Arc::new(StoreIndex::build_with_vocab(&opened.store, opened.symbols));
        let store = opened.store;
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| ScenarioError::Store(format!("bind {}: {e}", options.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ScenarioError::Store(format!("local addr: {e}")))?;
        let pool = options.accept_pool.max(1);
        let metrics = ServeMetrics::new(options.metrics_noop);
        let inner = Arc::new(ServerInner {
            store_path: store_path.to_path_buf(),
            options,
            index: RwLock::new(index),
            store: Mutex::new(store),
            registry: Registry::builtin_with(&GenOptions::default()),
            obs,
            metrics,
            slowlog: Mutex::new(VecDeque::new()),
            start_ns: monotonic_ns(),
            local_addr,
            shutdown: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            jobs: Mutex::new(JobState::default()),
            jobs_signal: Condvar::new(),
            pool: Mutex::new(pool),
            pool_signal: Condvar::new(),
            active_connections: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            query_hits: AtomicU64::new(0),
            query_misses: AtomicU64::new(0),
            submits: AtomicU64::new(0),
        });
        let accept = {
            let inner = inner.clone();
            std::thread::spawn(move || accept_loop(&inner, listener))
        };
        let scheduler = {
            let inner = inner.clone();
            std::thread::spawn(move || scheduler_loop(&inner))
        };
        Ok(ServerHandle {
            inner,
            store_lock: Some(store_lock),
            accept: Some(accept),
            scheduler: Some(scheduler),
            replayed,
            broke_stale_lock,
        })
    }
}

/// A running daemon: address, programmatic shutdown, and the blocking
/// [`ServerHandle::wait`] that finishes the lifecycle.
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    store_lock: Option<StoreLock>,
    accept: Option<std::thread::JoinHandle<()>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    /// Journal cells replayed at open (crash recovery).
    pub replayed: usize,
    /// The stale lock broken at startup, if any (dead-pid remediation).
    pub broke_stale_lock: Option<LockInfo>,
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Cells in the currently published index.
    pub fn cells(&self) -> usize {
        self.inner.snapshot().cells()
    }

    /// Initiates the same graceful shutdown as the `shutdown` op.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.inner);
    }

    /// Blocks until shutdown, then drains connections, joins the
    /// scheduler, writes the final checkpoint (fsync'd, journal folded
    /// in) and releases the store lock.
    pub fn wait(mut self) -> Result<ServeSummary, ScenarioError> {
        if let Some(accept) = self.accept.take() {
            accept.join().ok();
        }
        // Drain: in-flight handlers notice the shutdown flag within
        // their read timeout; the deadline only bounds a pathological
        // peer mid-request.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.inner.active_connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        if let Some(scheduler) = self.scheduler.take() {
            scheduler.join().ok();
        }
        let store = self
            .inner
            .store
            .lock()
            .map_err(|_| ScenarioError::Store("store lock poisoned".to_string()))?;
        store.checkpoint_observed(&self.inner.store_path, self.inner.obs.as_ref())?;
        let cells = store.len();
        drop(store);
        if let Some(store_lock) = self.store_lock.take() {
            store_lock.release()?;
        }
        let inner = &self.inner;
        let jobs = inner.jobs.lock().expect("job state lock poisoned");
        Ok(ServeSummary {
            cells,
            connections: inner.connections.load(Ordering::SeqCst),
            requests: inner.requests.load(Ordering::SeqCst),
            queries: inner.queries.load(Ordering::SeqCst),
            query_hits: inner.query_hits.load(Ordering::SeqCst),
            query_misses: inner.query_misses.load(Ordering::SeqCst),
            submits: inner.submits.load(Ordering::SeqCst),
            jobs_done: jobs.done,
            jobs_failed: jobs.failed,
            jobs_cancelled: jobs.cancelled,
            jobs_dropped: jobs.dropped,
            uptime_ms: inner.uptime_ms(),
        })
    }
}

impl ServerInner {
    fn snapshot(&self) -> Arc<StoreIndex> {
        self.index.read().expect("index lock poisoned").clone()
    }

    fn publish(&self, store: &ResultStore) {
        let index = Arc::new(StoreIndex::build(store));
        *self.index.write().expect("index lock poisoned") = index;
    }

    fn uptime_ms(&self) -> u64 {
        monotonic_ns().saturating_sub(self.start_ns) / 1_000_000
    }

    /// Push a request into the slowlog ring when it crossed the
    /// threshold. The payload is truncated — the ring is a hint for
    /// the operator, not a request archive.
    fn note_slow(&self, slot: usize, dur_ns: u64, payload: &str) {
        let duration_us = dur_ns / 1_000;
        if duration_us < self.options.slowlog_over_us {
            return;
        }
        let mut truncated: String = payload.chars().take(SLOWLOG_PAYLOAD).collect();
        if truncated.len() < payload.len() {
            truncated.push('…');
        }
        let entry = SlowEntry {
            op: SERVE_OPS.get(slot).copied().unwrap_or("other").to_string(),
            duration_us,
            at_ms: crate::telemetry::now_ms(),
            payload: truncated,
        };
        let mut ring = self.slowlog.lock().expect("slowlog lock poisoned");
        if ring.len() == SLOWLOG_CAP {
            ring.pop_front();
        }
        ring.push_back(entry);
    }
}

/// Flips the daemon into shutdown: drop queued jobs, cancel the
/// running one, wake the scheduler and the blocking accept. Returns
/// the number of queued jobs dropped (idempotent; repeat calls drop
/// nothing further).
fn initiate_shutdown(inner: &Arc<ServerInner>) -> u64 {
    let dropped = {
        let mut jobs = inner.jobs.lock().expect("job state lock poisoned");
        let dropped = jobs.queued.len() as u64;
        jobs.dropped += dropped;
        let ids: Vec<u64> = jobs.queued.drain(..).collect();
        for id in ids {
            jobs.finish(id, JobStatus::Dropped, None);
        }
        dropped
    };
    inner.shutdown.store(true, Ordering::SeqCst);
    inner.cancel.store(true, Ordering::SeqCst);
    inner.jobs_signal.notify_all();
    // Wake the accept loop out of its blocking accept; it re-checks
    // the flag before handling what it accepted.
    TcpStream::connect(inner.local_addr).ok();
    dropped
}

fn accept_loop(inner: &Arc<ServerInner>, listener: TcpListener) {
    for conn in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _accept_span = inner.obs.as_ref().map(|o| o.span("serve/accept", "serve"));
        // Bounded pool: block further accepts until a slot frees.
        {
            let mut free = inner.pool.lock().expect("pool lock poisoned");
            while *free == 0 {
                free = inner.pool_signal.wait(free).expect("pool lock poisoned");
            }
            *free -= 1;
        }
        inner.connections.fetch_add(1, Ordering::SeqCst);
        inner.active_connections.fetch_add(1, Ordering::SeqCst);
        let inner = inner.clone();
        std::thread::spawn(move || {
            serve_connection(&inner, stream);
            inner.active_connections.fetch_sub(1, Ordering::SeqCst);
            let mut free = inner.pool.lock().expect("pool lock poisoned");
            *free += 1;
            inner.pool_signal.notify_one();
        });
    }
}

/// One connection: JSON-lines request/response until EOF, error or
/// shutdown. A torn line (bytes without the newline, then disconnect)
/// is simply an unfinished request — the handler closes cleanly.
fn serve_connection(inner: &Arc<ServerInner>, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    // The timeout is the shutdown latency of an idle connection, not a
    // protocol deadline: on timeout the handler just re-checks the
    // shutdown flag and keeps listening.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if inner.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            break;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => break,
        };
        buf.extend_from_slice(&chunk[..n]);
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let request_span = inner.obs.as_ref().map(|o| o.span("serve/request", "serve"));
            inner.requests.fetch_add(1, Ordering::SeqCst);
            let started_ns = monotonic_ns();
            let (slot, response, close) = match Json::parse(line) {
                Ok(doc) => {
                    let slot =
                        ServeMetrics::slot_of(doc.get("op").and_then(Json::as_str).unwrap_or(""));
                    let (response, close) = handle_request(inner, &doc);
                    (slot, response, close)
                }
                Err(e) => (OP_OTHER, error_json(&format!("bad request: {e}")), false),
            };
            let mut text = response.compact();
            text.push('\n');
            let written = stream.write_all(text.as_bytes());
            drop(request_span);
            // Recorded after the response is on the wire, so a
            // `metrics` scrape never counts its own in-flight request.
            let finished_ns = monotonic_ns();
            let dur_ns = finished_ns.saturating_sub(started_ns);
            inner.metrics.record_request(slot, dur_ns, finished_ns);
            inner.note_slow(slot, dur_ns, line);
            if written.is_err() || close {
                return;
            }
        }
    }
}

/// A `{"ok": false, "error": ...}` response.
fn error_json(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(message)),
    ])
}

/// A `{"ok": true, ...}` response.
fn ok_json(fields: Vec<(String, Json)>) -> Json {
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    members.extend(fields);
    Json::Obj(members)
}

/// Renders a request value usable as an axis value: strings pass
/// through, integral numbers lose the float suffix (`16`, not `16.0` —
/// axis values are canonical strings).
fn value_string(value: &Json) -> Option<String> {
    match value {
        Json::Str(s) => Some(s.clone()),
        Json::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => Some(format!("{}", *x as i64)),
        Json::Num(x) => Some(format!("{x}")),
        Json::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

/// Dispatches one parsed request. The bool asks the connection handler
/// to close after writing the response (only the `shutdown` op).
fn handle_request(inner: &Arc<ServerInner>, doc: &Json) -> (Json, bool) {
    let Some(op) = doc.get("op").and_then(Json::as_str) else {
        return (error_json("request has no `op`"), false);
    };
    match op {
        "ping" => (
            ok_json(vec![
                ("pong".to_string(), Json::Bool(true)),
                ("uptime_ms".to_string(), Json::Num(inner.uptime_ms() as f64)),
            ]),
            false,
        ),
        "stats" => (stats_response(inner), false),
        "query" => (query_response(inner, doc), false),
        "query_range" => (query_range_response(inner, doc), false),
        "report" => (report_response(inner, doc), false),
        "submit" => (submit_response(inner, doc), false),
        "metrics" => (metrics_response(inner), false),
        "jobs" => (jobs_response(inner), false),
        "slowlog" => (slowlog_response(inner), false),
        "shutdown" => {
            let dropped = initiate_shutdown(inner);
            let failed = inner.jobs.lock().expect("job state lock poisoned").failed;
            (
                ok_json(vec![
                    ("shutting_down".to_string(), Json::Bool(true)),
                    ("jobs_dropped".to_string(), Json::Num(dropped as f64)),
                    ("jobs_failed".to_string(), Json::Num(failed as f64)),
                ]),
                true,
            )
        }
        other => (error_json(&format!("unknown op `{other}`")), false),
    }
}

/// `metrics`: snapshot the registry, refresh the scrape-time gauges,
/// and render both compact JSON and Prometheus text exposition.
fn metrics_response(inner: &ServerInner) -> Json {
    let index = inner.snapshot();
    let registry = &inner.metrics.registry;
    registry
        .gauge("harness_serve_index_cells")
        .set(index.cells() as u64);
    registry
        .gauge("harness_serve_index_scenarios")
        .set(index.scenarios().count() as u64);
    registry
        .gauge("harness_serve_index_interned")
        .set(index.interned() as u64);
    registry
        .gauge("harness_serve_active_connections")
        .set(inner.active_connections.load(Ordering::SeqCst) as u64);
    {
        let jobs = inner.jobs.lock().expect("job state lock poisoned");
        registry
            .gauge("harness_serve_jobs_queued")
            .set(jobs.queued.len() as u64);
        registry
            .gauge("harness_serve_jobs_running")
            .set(jobs.running.is_some() as u64);
        registry.gauge("harness_serve_jobs_done").set(jobs.done);
        registry.gauge("harness_serve_jobs_failed").set(jobs.failed);
    }
    let snapshot = registry.snapshot_at(monotonic_ns());
    ok_json(vec![
        ("metrics".to_string(), snapshot.to_json()),
        (
            "prometheus".to_string(),
            Json::str(snapshot.to_prometheus()),
        ),
    ])
}

/// `jobs`: every retained job record — status, spec, progress, error.
fn jobs_response(inner: &ServerInner) -> Json {
    let jobs = inner.jobs.lock().expect("job state lock poisoned");
    let list = jobs
        .records
        .values()
        .map(|record| {
            let mut fields = vec![
                ("job".to_string(), Json::Num(record.spec.id as f64)),
                ("status".to_string(), Json::str(record.status.as_str())),
                (
                    "scenarios".to_string(),
                    Json::Arr(record.spec.scenarios.iter().map(Json::str).collect()),
                ),
                (
                    "filters".to_string(),
                    Json::Arr(record.spec.filters.iter().map(Json::str).collect()),
                ),
                ("seed".to_string(), Json::Num(record.spec.seed as f64)),
                (
                    "cells_done".to_string(),
                    Json::Num(record.progress.cells_done.load(Ordering::Relaxed) as f64),
                ),
                (
                    "cells_total".to_string(),
                    Json::Num(record.progress.cells_total.load(Ordering::Relaxed) as f64),
                ),
                (
                    "started_ms".to_string(),
                    Json::Num(record.progress.started_ms.load(Ordering::Relaxed) as f64),
                ),
            ];
            if let Some(error) = &record.error {
                fields.push(("error".to_string(), Json::str(error)));
            }
            Json::Obj(fields)
        })
        .collect();
    ok_json(vec![("jobs".to_string(), Json::Arr(list))])
}

/// `slowlog`: the ring of requests slower than the threshold, oldest
/// first.
fn slowlog_response(inner: &ServerInner) -> Json {
    let ring = inner.slowlog.lock().expect("slowlog lock poisoned");
    let entries = ring
        .iter()
        .map(|entry| {
            Json::Obj(vec![
                ("op".to_string(), Json::str(&entry.op)),
                (
                    "duration_us".to_string(),
                    Json::Num(entry.duration_us as f64),
                ),
                ("at_ms".to_string(), Json::Num(entry.at_ms as f64)),
                ("payload".to_string(), Json::str(&entry.payload)),
            ])
        })
        .collect();
    ok_json(vec![
        (
            "threshold_us".to_string(),
            Json::Num(inner.options.slowlog_over_us as f64),
        ),
        ("entries".to_string(), Json::Arr(entries)),
    ])
}

fn stats_response(inner: &ServerInner) -> Json {
    let index = inner.snapshot();
    let uptime_ms = inner.uptime_ms();
    let queries = inner.queries.load(Ordering::SeqCst);
    // Lifetime average: a burst an hour ago inflates this forever, so
    // it is kept only as `qps_lifetime`; `qps` is the sliding window.
    let qps_lifetime = if uptime_ms > 0 {
        queries as f64 * 1000.0 / uptime_ms as f64
    } else {
        0.0
    };
    // Early in the uptime the full 10s window would divide a short
    // burst by seconds that never existed — clamp to seconds lived.
    let window_secs = uptime_ms.div_ceil(1_000).clamp(1, RATE_WINDOW_SECS);
    let qps = inner
        .metrics
        .query_rate
        .rate_over(monotonic_ns(), window_secs);
    let jobs = inner.jobs.lock().expect("job state lock poisoned");
    let progress = jobs
        .running
        .and_then(|id| jobs.records.get(&id))
        .map(|record| {
            Json::Obj(vec![
                ("job".to_string(), Json::Num(record.spec.id as f64)),
                (
                    "cells_done".to_string(),
                    Json::Num(record.progress.cells_done.load(Ordering::Relaxed) as f64),
                ),
                (
                    "cells_total".to_string(),
                    Json::Num(record.progress.cells_total.load(Ordering::Relaxed) as f64),
                ),
                (
                    "started_ms".to_string(),
                    Json::Num(record.progress.started_ms.load(Ordering::Relaxed) as f64),
                ),
            ])
        })
        .unwrap_or(Json::Null);
    let count = |n: u64| Json::Num(n as f64);
    ok_json(vec![
        ("uptime_ms".to_string(), count(uptime_ms)),
        ("cells".to_string(), Json::Num(index.cells() as f64)),
        ("fold_cells".to_string(), Json::Num(index.folds() as f64)),
        (
            "scenarios".to_string(),
            Json::Num(index.scenarios().count() as f64),
        ),
        (
            "connections".to_string(),
            count(inner.connections.load(Ordering::SeqCst)),
        ),
        (
            "requests".to_string(),
            count(inner.requests.load(Ordering::SeqCst)),
        ),
        ("queries".to_string(), count(queries)),
        (
            "query_hits".to_string(),
            count(inner.query_hits.load(Ordering::SeqCst)),
        ),
        (
            "query_misses".to_string(),
            count(inner.query_misses.load(Ordering::SeqCst)),
        ),
        (
            "qps".to_string(),
            Json::Num((qps * 1000.0).round() / 1000.0),
        ),
        (
            "qps_lifetime".to_string(),
            Json::Num((qps_lifetime * 1000.0).round() / 1000.0),
        ),
        ("jobs_failed".to_string(), count(jobs.failed)),
        (
            "submits".to_string(),
            count(inner.submits.load(Ordering::SeqCst)),
        ),
        (
            "jobs".to_string(),
            Json::Obj(vec![
                ("queued".to_string(), Json::Num(jobs.queued.len() as f64)),
                (
                    "running".to_string(),
                    Json::Num(jobs.running.is_some() as u64 as f64),
                ),
                ("done".to_string(), count(jobs.done)),
                ("failed".to_string(), count(jobs.failed)),
                ("cancelled".to_string(), count(jobs.cancelled)),
                ("dropped".to_string(), count(jobs.dropped)),
                ("progress".to_string(), progress),
            ]),
        ),
    ])
}

/// `query`: point lookup by scenario + full axis assignment.
fn query_response(inner: &ServerInner, doc: &Json) -> Json {
    let Some(scenario) = doc.get("scenario").and_then(Json::as_str) else {
        return error_json("query needs a `scenario`");
    };
    let mut params: Vec<(String, String)> = Vec::new();
    match doc.get("params") {
        Some(Json::Obj(members)) => {
            for (axis, value) in members {
                let Some(value) = value_string(value) else {
                    return error_json(&format!("axis `{axis}`: unusable value"));
                };
                params.push((axis.clone(), value));
            }
        }
        None => {}
        Some(_) => return error_json("`params` must be an object"),
    }
    inner.queries.fetch_add(1, Ordering::SeqCst);
    let index = inner.snapshot();
    match index.query_point(scenario, &params) {
        Some(hits) => {
            inner.query_hits.fetch_add(1, Ordering::SeqCst);
            if let Some(obs) = &inner.obs {
                obs.count("serve/query_hit", 1);
            }
            let cells = hits.iter().map(|hit| cell_json(&index, hit)).collect();
            ok_json(vec![
                ("scenario".to_string(), Json::str(scenario)),
                ("cells".to_string(), Json::Arr(cells)),
            ])
        }
        None => {
            inner.query_misses.fetch_add(1, Ordering::SeqCst);
            if let Some(obs) = &inner.obs {
                obs.count("serve/query_miss", 1);
            }
            let axes = match index.axes(scenario) {
                Some(axes) => format!(" (axes: {})", axes.join(", ")),
                None => String::new(),
            };
            ok_json(vec![
                ("scenario".to_string(), Json::str(scenario)),
                ("cells".to_string(), Json::Arr(Vec::new())),
                (
                    "miss".to_string(),
                    Json::str(format!("no cell at that assignment{axes}")),
                ),
            ])
        }
    }
}

/// One indexed cell as a response object. Fold cells (derived
/// distribution metrics over a replicate group) carry a `fold: true`
/// marker; raw cells keep the exact shape they had before replicates
/// existed.
fn cell_json(index: &StoreIndex, hit: &index::IndexHit<'_>) -> Json {
    let mut members = vec![
        (
            "params".to_string(),
            Json::Obj(
                hit.params
                    .iter()
                    .map(|(axis, value)| ((*axis).to_string(), Json::str(*value)))
                    .collect(),
            ),
        ),
        (
            "seed".to_string(),
            Json::str(format!("{:016x}", hit.cell.seed)),
        ),
        ("version".to_string(), Json::Num(hit.cell.version as f64)),
        ("fingerprint".to_string(), Json::str(&hit.cell.fingerprint)),
    ];
    if hit.cell.fold {
        members.push(("fold".to_string(), Json::Bool(true)));
    }
    members.push((
        "metrics".to_string(),
        Json::Obj(
            hit.cell
                .metrics
                .iter()
                .map(|&(name, value)| (index.metric_name(name).to_string(), Json::Num(value)))
                .collect(),
        ),
    ));
    Json::Obj(members)
}

/// `query_range`: axis-filtered scan returning metric columns.
fn query_range_response(inner: &ServerInner, doc: &Json) -> Json {
    let Some(scenario) = doc.get("scenario").and_then(Json::as_str) else {
        return error_json("query_range needs a `scenario`");
    };
    let mut clauses: Vec<(String, Vec<String>)> = Vec::new();
    match doc.get("where") {
        Some(Json::Obj(members)) => {
            for (axis, accepted) in members {
                let values = match accepted {
                    Json::Arr(items) => items.iter().map(value_string).collect::<Option<Vec<_>>>(),
                    single => value_string(single).map(|v| vec![v]),
                };
                let Some(values) = values else {
                    return error_json(&format!("axis `{axis}`: unusable clause value"));
                };
                clauses.push((axis.clone(), values));
            }
        }
        None => {}
        Some(_) => return error_json("`where` must be an object"),
    }
    let index = inner.snapshot();
    let hits = match index.query_range(scenario, &clauses) {
        Ok(hits) => hits,
        Err(message) => return error_json(&message),
    };
    // Columns: the requested metrics, or every metric the scenario has.
    let metrics: Vec<String> = match doc.get("metrics") {
        Some(Json::Arr(items)) => {
            match items
                .iter()
                .map(|m| m.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
            {
                Some(names) => names,
                None => return error_json("`metrics` must be an array of names"),
            }
        }
        None => index
            .metrics(scenario)
            .unwrap_or_default()
            .into_iter()
            .map(str::to_string)
            .collect(),
        Some(_) => return error_json("`metrics` must be an array of names"),
    };
    let mut params_column = Vec::with_capacity(hits.len());
    let mut seed_column = Vec::with_capacity(hits.len());
    let mut metric_columns: Vec<Vec<Json>> = vec![Vec::with_capacity(hits.len()); metrics.len()];
    for hit in &hits {
        params_column.push(Json::str(
            hit.params
                .iter()
                .map(|(axis, value)| format!("{axis}={value}"))
                .collect::<Vec<_>>()
                .join(","),
        ));
        seed_column.push(Json::str(format!("{:016x}", hit.cell.seed)));
        for (column, name) in metric_columns.iter_mut().zip(&metrics) {
            let value = hit
                .cell
                .metrics
                .iter()
                .find(|&&(sym, _)| index.metric_name(sym) == name)
                .map(|&(_, v)| v);
            column.push(value.map_or(Json::Null, Json::Num));
        }
    }
    let mut columns = vec![
        ("params".to_string(), Json::Arr(params_column)),
        ("seed".to_string(), Json::Arr(seed_column)),
    ];
    for (name, column) in metrics.into_iter().zip(metric_columns) {
        columns.push((name, Json::Arr(column)));
    }
    ok_json(vec![
        ("scenario".to_string(), Json::str(scenario)),
        ("count".to_string(), Json::Num(hits.len() as f64)),
        ("columns".to_string(), Json::Obj(columns)),
    ])
}

/// `report`: the batch `campaign report` evidence join, rendered from
/// the index snapshot (never blocking on a running submit).
fn report_response(inner: &ServerInner, doc: &Json) -> Json {
    let scenario = doc.get("scenario").and_then(Json::as_str);
    let index = inner.snapshot();
    if let Some(id) = scenario {
        if index.axes(id).is_none() {
            return error_json(&format!(
                "no indexed cells for scenario `{id}` (known: {})",
                index.scenarios().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    let mut cells = Vec::new();
    for id in index.scenarios() {
        if scenario.is_some_and(|s| s != id) {
            continue;
        }
        let Ok(hits) = index.query_range(id, &[]) else {
            continue;
        };
        for hit in hits {
            cells.push(crate::exec::CampaignCell {
                scenario: id.to_string(),
                params: Params::new(
                    hit.params
                        .iter()
                        .map(|(axis, value)| ((*axis).to_string(), (*value).to_string()))
                        .collect(),
                ),
                seed: hit.cell.seed,
                result: CellResult {
                    metrics: hit
                        .cell
                        .metrics
                        .iter()
                        .map(|&(name, value)| (index.metric_name(name).to_string(), value))
                        .collect(),
                },
                memoized: true,
            });
        }
    }
    let campaign = report::memoized_campaign(cells, 0);
    ok_json(vec![
        ("cells".to_string(), Json::Num(campaign.cells.len() as f64)),
        (
            "report".to_string(),
            Json::str(report::evidence_summary(&campaign, &inner.registry)),
        ),
    ])
}

/// `submit`: validate and enqueue a campaign spec for the scheduler.
fn submit_response(inner: &ServerInner, doc: &Json) -> Json {
    if inner.shutdown.load(Ordering::SeqCst) {
        return error_json("shutting down: submissions are no longer accepted");
    }
    // Unknown keys are rejected, not ignored: a typo like `scenario`
    // for `scenarios` would otherwise silently submit the full matrix.
    const KNOWN: [&str; 7] = [
        "op",
        "scenarios",
        "filters",
        "seed",
        "corpus_size",
        "replicates",
        "keep_replicates",
    ];
    if let Json::Obj(members) = doc {
        for (key, _) in members {
            if !KNOWN.contains(&key.as_str()) {
                return error_json(&format!(
                    "unknown submit field `{key}` (expected one of: {})",
                    KNOWN.join(", ")
                ));
            }
        }
    }
    let mut scenarios = Vec::new();
    match doc.get("scenarios") {
        Some(Json::Arr(items)) => {
            for item in items {
                match item.as_str() {
                    Some(id) => scenarios.push(id.to_string()),
                    None => return error_json("`scenarios` must be an array of ids"),
                }
            }
        }
        None => {}
        Some(_) => return error_json("`scenarios` must be an array of ids"),
    }
    // Eager validation: an id typo or bad filter fails the submit, not
    // the job an hour later.
    for id in &scenarios {
        if inner.registry.get(id).is_none() {
            return error_json(&format!("unknown scenario `{id}`"));
        }
    }
    let mut filters = Vec::new();
    match doc.get("filters") {
        Some(Json::Arr(items)) => {
            for item in items {
                match item.as_str() {
                    Some(clause) => filters.push(clause.to_string()),
                    None => return error_json("`filters` must be an array of axis=value clauses"),
                }
            }
        }
        None => {}
        Some(_) => return error_json("`filters` must be an array of axis=value clauses"),
    }
    if let Err(e) = Filter::parse(&filters) {
        return error_json(&e);
    }
    let seed = match doc.get("seed") {
        Some(Json::Num(x)) if x.fract() == 0.0 && *x >= 0.0 && *x < 9e15 => *x as u64,
        None => 0,
        Some(_) => return error_json("`seed` must be a non-negative integer"),
    };
    let corpus_size = match doc.get("corpus_size") {
        Some(Json::Num(x)) if x.fract() == 0.0 && *x >= 1.0 && *x <= u32::MAX as f64 => {
            Some(*x as u32)
        }
        None => None,
        Some(_) => return error_json("`corpus_size` must be a positive integer"),
    };
    let replicates = match doc.get("replicates") {
        Some(Json::Num(x)) if x.fract() == 0.0 && *x >= 1.0 && *x <= u32::MAX as f64 => {
            Some(*x as u32)
        }
        None => None,
        Some(_) => return error_json("`replicates` must be a positive integer"),
    };
    let keep_replicates = match doc.get("keep_replicates") {
        Some(Json::Bool(b)) => *b,
        None => false,
        Some(_) => return error_json("`keep_replicates` must be a boolean"),
    };
    inner.submits.fetch_add(1, Ordering::SeqCst);
    let mut jobs = inner.jobs.lock().expect("job state lock poisoned");
    jobs.next_id += 1;
    let id = jobs.next_id;
    jobs.records.insert(
        id,
        JobRecord {
            spec: JobSpec {
                id,
                scenarios,
                filters,
                seed,
                corpus_size,
                replicates,
                keep_replicates,
            },
            status: JobStatus::Queued,
            error: None,
            progress: Arc::new(JobProgress::default()),
        },
    );
    jobs.queued.push_back(id);
    let queued = jobs.queued.len();
    drop(jobs);
    inner.jobs_signal.notify_all();
    ok_json(vec![
        ("job".to_string(), Json::Num(id as f64)),
        ("queued".to_string(), Json::Num(queued as f64)),
    ])
}

/// The scheduler thread: pop one job at a time, run it on the
/// streaming executor, publish the refreshed index.
fn scheduler_loop(inner: &Arc<ServerInner>) {
    loop {
        let job = {
            let mut jobs = inner.jobs.lock().expect("job state lock poisoned");
            loop {
                if let Some(id) = jobs.queued.pop_front() {
                    jobs.running = Some(id);
                    let record = jobs.records.get_mut(&id).expect("queued job has a record");
                    record.status = JobStatus::Running;
                    record
                        .progress
                        .started_ms
                        .store(crate::telemetry::now_ms(), Ordering::Relaxed);
                    break Some((record.spec.clone(), record.progress.clone()));
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = inner
                    .jobs_signal
                    .wait(jobs)
                    .expect("job state lock poisoned");
            }
        };
        let Some((spec, progress)) = job else { break };
        let outcome = run_job(inner, &spec, &progress);
        let mut jobs = inner.jobs.lock().expect("job state lock poisoned");
        jobs.running = None;
        match outcome {
            Ok(true) => {
                jobs.done += 1;
                jobs.finish(spec.id, JobStatus::Done, None);
            }
            Ok(false) => {
                jobs.cancelled += 1;
                jobs.finish(spec.id, JobStatus::Cancelled, None);
            }
            Err(e) => {
                jobs.failed += 1;
                jobs.finish(spec.id, JobStatus::Failed, Some(e.to_string()));
                if !inner.options.quiet {
                    eprintln!("serve: job {} failed: {e}", spec.id);
                }
            }
        }
    }
}

/// Runs one submitted campaign: same executor, same journal, same
/// checkpoint writer as a batch `campaign run` — which is why the
/// resulting store is byte-identical to the batch run's. Returns
/// `Ok(false)` when shutdown cancelled the job mid-run (completed
/// cells are persisted either way).
fn run_job(
    inner: &Arc<ServerInner>,
    job: &JobSpec,
    progress: &Arc<JobProgress>,
) -> Result<bool, ScenarioError> {
    let _span = inner
        .obs
        .as_ref()
        .map(|o| o.span("serve/submit_run", "serve"));
    let registry = Registry::builtin_with(&GenOptions {
        corpus_size: job.corpus_size.unwrap_or(DEFAULT_CORPUS_SIZE),
        corpus_seed: job.seed,
    });
    let filter = Filter::parse(&job.filters).map_err(ScenarioError::Store)?;
    let mut store = inner
        .store
        .lock()
        .map_err(|_| ScenarioError::Store("store lock poisoned".to_string()))?;
    let mut journal = CompactingJournal::open(
        &inner.store_path,
        inner.options.checkpoint_every,
        inner.options.compact_journal_over,
        &store,
    )?;
    if let Some(obs) = &inner.obs {
        journal.observe(obs);
    }
    let journal = Mutex::new(journal);
    let journal_sink = |fp: &str, cell: &StoredCell| {
        journal
            .lock()
            .expect("journal lock poisoned")
            .append(fp, cell);
    };
    // Stream completion (fresh + memoized) into the job's progress
    // cells so `stats`/`jobs`/`top` can watch the run live.
    let progress_sink = |p: ExecProgress| {
        progress
            .cells_done
            .store((p.executed + p.memoized) as u64, Ordering::Relaxed);
        progress
            .cells_total
            .store(p.total as u64, Ordering::Relaxed);
    };
    let outcome = run_campaign_with(
        &registry,
        &job.scenarios,
        &filter,
        &ExecConfig {
            threads: inner.options.exec_threads,
            seed: job.seed,
            replicates: job.replicates.unwrap_or(1),
            keep_replicates: job.keep_replicates,
        },
        &mut store,
        CellDomain::All,
        ExecHooks {
            progress: Some(&progress_sink),
            on_result: Some(&journal_sink),
            obs: inner.obs.as_ref(),
            cancel: Some(&inner.cancel),
            ..ExecHooks::default()
        },
    );
    journal
        .into_inner()
        .expect("journal lock poisoned")
        .finish()?;
    let completed = match outcome {
        Ok(_) => true,
        Err(ScenarioError::Cancelled) => false,
        Err(e) => {
            // The error cell never journaled, but completed siblings
            // did: checkpoint and publish them before surfacing.
            store.checkpoint_observed(&inner.store_path, inner.obs.as_ref())?;
            inner.publish(&store);
            return Err(e);
        }
    };
    store.checkpoint_observed(&inner.store_path, inner.obs.as_ref())?;
    inner.publish(&store);
    Ok(completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("harness-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    struct Client {
        reader: std::io::BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: std::io::BufReader::new(stream.try_clone().unwrap()),
                stream,
            }
        }

        fn request(&mut self, line: &str) -> Json {
            writeln!(self.stream, "{line}").unwrap();
            let mut response = String::new();
            self.reader.read_line(&mut response).unwrap();
            Json::parse(response.trim()).unwrap()
        }
    }

    fn assert_ok(doc: &Json) {
        assert_eq!(
            doc.get("ok").cloned(),
            Some(Json::Bool(true)),
            "{}",
            doc.compact()
        );
    }

    #[test]
    fn in_process_lifecycle_serves_queries_and_submits() {
        let dir = scratch("lifecycle");
        let store_path = dir.join("store.json");
        let handle = Server::bind(
            &store_path,
            ServeOptions {
                quiet: true,
                exec_threads: 2,
                ..ServeOptions::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(handle.cells(), 0);
        let mut client = Client::connect(handle.addr());

        let pong = client.request("{\"op\":\"ping\"}");
        assert_ok(&pong);
        assert_eq!(pong.get("pong").cloned(), Some(Json::Bool(true)));

        // Junk and unknown ops error without dropping the connection.
        let bad = client.request("not json at all");
        assert_eq!(bad.get("ok").cloned(), Some(Json::Bool(false)));
        let unknown = client.request("{\"op\":\"warp\"}");
        assert_eq!(unknown.get("ok").cloned(), Some(Json::Bool(false)));

        // Submit a tiny campaign and wait for it to land in the index.
        let submitted =
            client.request("{\"op\":\"submit\",\"scenarios\":[\"pipeline-domino\"],\"seed\":42}");
        assert_ok(&submitted);
        let mut done = false;
        for _ in 0..600 {
            let stats = client.request("{\"op\":\"stats\"}");
            assert_ok(&stats);
            let jobs_done = stats
                .get("jobs")
                .and_then(|j| j.get("done"))
                .and_then(Json::as_f64);
            if jobs_done == Some(1.0) {
                done = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(done, "the submitted job never completed");

        // A bad submit is rejected eagerly.
        let rejected = client.request("{\"op\":\"submit\",\"scenarios\":[\"not-a-scenario\"]}");
        assert_eq!(rejected.get("ok").cloned(), Some(Json::Bool(false)));

        // So is a field typo: `scenario` for `scenarios` would
        // otherwise silently submit the full matrix.
        let typo =
            client.request("{\"op\":\"submit\",\"scenario\":[\"pipeline-domino\"],\"seed\":42}");
        assert_eq!(typo.get("ok").cloned(), Some(Json::Bool(false)));
        assert!(
            typo.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("scenarios"),
            "the rejection must name the expected field: {typo:?}"
        );

        // Point query: hit, then miss.
        let hit = client.request(
            "{\"op\":\"query\",\"scenario\":\"pipeline-domino\",\"params\":{\"n\":\"16\"}}",
        );
        assert_ok(&hit);
        let cells = hit.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(cells[0]
            .get("metrics")
            .and_then(|m| m.get("sipr"))
            .and_then(Json::as_f64)
            .is_some());
        let miss = client.request(
            "{\"op\":\"query\",\"scenario\":\"pipeline-domino\",\"params\":{\"n\":\"9999\"}}",
        );
        assert_ok(&miss);
        assert!(miss.get("cells").and_then(Json::as_arr).unwrap().is_empty());

        // Range scan with a clause + metric column selection.
        let range = client.request(
            "{\"op\":\"query_range\",\"scenario\":\"pipeline-domino\",\"where\":{\"n\":[\"16\",\"64\"]},\"metrics\":[\"sipr\"]}",
        );
        assert_ok(&range);
        assert_eq!(range.get("count").and_then(Json::as_f64), Some(2.0));
        let columns = range.get("columns").unwrap();
        assert_eq!(columns.get("sipr").and_then(Json::as_arr).unwrap().len(), 2);
        let err = client.request(
            "{\"op\":\"query_range\",\"scenario\":\"pipeline-domino\",\"where\":{\"bogus\":\"1\"}}",
        );
        assert_eq!(err.get("ok").cloned(), Some(Json::Bool(false)));
        assert!(
            err.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("axes"),
            "{}",
            err.compact()
        );

        // The report join renders over the wire.
        let report = client.request("{\"op\":\"report\",\"scenario\":\"pipeline-domino\"}");
        assert_ok(&report);
        assert!(report
            .get("report")
            .and_then(Json::as_str)
            .unwrap()
            .contains("pipeline-domino"));

        // Graceful shutdown checkpoints and releases the lock.
        let bye = client.request("{\"op\":\"shutdown\"}");
        assert_ok(&bye);
        let summary = handle.wait().unwrap();
        assert_eq!(summary.jobs_done, 1);
        assert_eq!(summary.query_hits, 1);
        assert_eq!(summary.query_misses, 1);
        assert!(summary.cells > 0);
        assert!(!lock::lock_path(&store_path).exists());

        // The daemon's store is byte-identical to a batch run of the
        // same campaign (same executor, same checkpoint writer).
        let mut batch = ResultStore::new();
        let registry = Registry::builtin_with(&GenOptions {
            corpus_size: DEFAULT_CORPUS_SIZE,
            corpus_seed: 42,
        });
        run_campaign_with(
            &registry,
            &["pipeline-domino".to_string()],
            &Filter::all(),
            &ExecConfig {
                threads: 2,
                seed: 42,
                ..ExecConfig::default()
            },
            &mut batch,
            CellDomain::All,
            ExecHooks::default(),
        )
        .unwrap();
        let batch_path = dir.join("batch.json");
        batch.checkpoint(&batch_path).unwrap();
        assert_eq!(
            std::fs::read(&store_path).unwrap(),
            std::fs::read(&batch_path).unwrap(),
            "served store must be byte-identical to the batch store"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_jobs_and_slowlog_roundtrip() {
        let dir = scratch("metrics");
        let store_path = dir.join("store.json");
        let handle = Server::bind(
            &store_path,
            ServeOptions {
                quiet: true,
                exec_threads: 2,
                // Every request is "slow" at threshold 0: the ring
                // itself is what's under test.
                slowlog_over_us: 0,
                ..ServeOptions::default()
            },
            None,
        )
        .unwrap();
        let mut client = Client::connect(handle.addr());

        // A known request mix: 3 pings, 1 submit, wait via stats.
        for _ in 0..3 {
            assert_ok(&client.request("{\"op\":\"ping\"}"));
        }
        let submitted =
            client.request("{\"op\":\"submit\",\"scenarios\":[\"pipeline-domino\"],\"seed\":7}");
        assert_ok(&submitted);
        let mut stats_sent = 0u64;
        let mut done = false;
        for _ in 0..600 {
            let stats = client.request("{\"op\":\"stats\"}");
            stats_sent += 1;
            assert_ok(&stats);
            if stats
                .get("jobs")
                .and_then(|j| j.get("done"))
                .and_then(Json::as_f64)
                == Some(1.0)
            {
                done = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(done, "the submitted job never completed");
        // `stats` carries the windowed qps next to the lifetime rate
        // and the top-level failure counter.
        let stats = client.request("{\"op\":\"stats\"}");
        stats_sent += 1;
        assert!(stats.get("qps").and_then(Json::as_f64).is_some());
        assert!(stats.get("qps_lifetime").and_then(Json::as_f64).is_some());
        assert_eq!(stats.get("jobs_failed").and_then(Json::as_f64), Some(0.0));

        // One query so its histogram is non-empty.
        let hit = client.request(
            "{\"op\":\"query\",\"scenario\":\"pipeline-domino\",\"params\":{\"n\":\"16\"}}",
        );
        assert_ok(&hit);

        // The registry's counters must exactly match the issued mix.
        // (The metrics request itself records only after responding,
        // so it does not count itself.)
        let metrics = client.request("{\"op\":\"metrics\"}");
        assert_ok(&metrics);
        let counters = metrics
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .unwrap();
        let counter = |op: &str| {
            counters
                .get(&format!("harness_serve_requests_total{{op=\"{op}\"}}"))
                .and_then(Json::as_f64)
        };
        assert_eq!(counter("ping"), Some(3.0));
        assert_eq!(counter("submit"), Some(1.0));
        assert_eq!(counter("query"), Some(1.0));
        assert_eq!(counter("stats"), Some(stats_sent as f64));
        assert_eq!(counter("metrics"), Some(0.0));
        let histograms = metrics
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .unwrap();
        let query_hist = histograms
            .get("harness_serve_request_latency_seconds{op=\"query\"}")
            .unwrap();
        assert_eq!(query_hist.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(query_hist.get("p99_us").and_then(Json::as_f64).unwrap() > 0.0);
        // The exposition text is well-formed and cumulative.
        let text = metrics.get("prometheus").and_then(Json::as_str).unwrap();
        assert!(text.contains("# TYPE harness_serve_request_latency_seconds histogram"));
        assert!(text.contains("harness_serve_requests_total{op=\"ping\"} 3\n"));
        assert!(text.contains(
            "harness_serve_request_latency_seconds_bucket{op=\"query\",le=\"+Inf\"} 1\n"
        ));
        assert!(text.contains("harness_serve_index_cells "));

        // `jobs` reports the finished job with full progress.
        let jobs = client.request("{\"op\":\"jobs\"}");
        assert_ok(&jobs);
        let list = jobs.get("jobs").and_then(Json::as_arr).unwrap();
        assert_eq!(list.len(), 1);
        let job = &list[0];
        assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
        let cells_done = job.get("cells_done").and_then(Json::as_f64).unwrap();
        let cells_total = job.get("cells_total").and_then(Json::as_f64).unwrap();
        assert!(cells_done > 0.0);
        assert_eq!(cells_done, cells_total, "a done job is fully progressed");
        assert!(job.get("started_ms").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(job.get("error").is_none());

        // A failed job: a directory squatting on the journal path makes
        // the journal unopenable, and the error string lands in the
        // record instead of vanishing into stderr.
        let journal_path = crate::store::journal_path(&store_path);
        std::fs::create_dir_all(&journal_path).unwrap();
        let failed =
            client.request("{\"op\":\"submit\",\"scenarios\":[\"pipeline-domino\"],\"seed\":8}");
        assert_ok(&failed);
        let mut saw_failure = false;
        for _ in 0..600 {
            let stats = client.request("{\"op\":\"stats\"}");
            if stats
                .get("jobs_failed")
                .and_then(Json::as_f64)
                .is_some_and(|n| n >= 1.0)
            {
                saw_failure = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_failure, "the doomed job never failed");
        // Clear the obstruction so later submits could journal again.
        std::fs::remove_dir(&journal_path).unwrap();
        let jobs = client.request("{\"op\":\"jobs\"}");
        let list = jobs.get("jobs").and_then(Json::as_arr).unwrap();
        let failed_job = list
            .iter()
            .find(|j| j.get("status").and_then(Json::as_str) == Some("failed"))
            .expect("the failed job is recorded");
        assert!(
            !failed_job
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .is_empty(),
            "the failure reason is retrievable"
        );

        // The slowlog ring captured the mix (threshold 0), op-tagged
        // with truncated payloads.
        let slowlog = client.request("{\"op\":\"slowlog\"}");
        assert_ok(&slowlog);
        assert_eq!(
            slowlog.get("threshold_us").and_then(Json::as_f64),
            Some(0.0)
        );
        let entries = slowlog.get("entries").and_then(Json::as_arr).unwrap();
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|e| {
            e.get("op").and_then(Json::as_str).is_some()
                && e.get("duration_us").and_then(Json::as_f64).is_some()
                && e.get("at_ms").and_then(Json::as_f64).unwrap_or(0.0) > 0.0
        }));
        assert!(
            entries
                .iter()
                .any(|e| e.get("op").and_then(Json::as_str) == Some("ping")),
            "the pings crossed the zero threshold"
        );
        // The ring is bounded.
        assert!(entries.len() <= 64);

        // `shutdown` now reports the failure tally too.
        let bye = client.request("{\"op\":\"shutdown\"}");
        assert_ok(&bye);
        assert_eq!(bye.get("jobs_failed").and_then(Json::as_f64), Some(1.0));
        let summary = handle.wait().unwrap();
        assert_eq!(summary.jobs_done, 1);
        assert_eq!(summary.jobs_failed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_lock_refuses_second_daemon_and_gc() {
        let dir = scratch("lock");
        let store_path = dir.join("store.json");
        let handle = Server::bind(
            &store_path,
            ServeOptions {
                quiet: true,
                ..ServeOptions::default()
            },
            None,
        )
        .unwrap();
        let err = match Server::bind(&store_path, ServeOptions::default(), None) {
            Ok(_) => panic!("second daemon must refuse a live lock"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("pid"), "{err}");
        assert!(lock::refuse_if_live(&store_path, "gc").is_err());
        handle.shutdown();
        handle.wait().unwrap();
        assert_eq!(lock::refuse_if_live(&store_path, "gc").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
