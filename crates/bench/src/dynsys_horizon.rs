//! Section 4's Bernardes instance: prediction horizons of discrete
//! dynamical systems under δ-perturbation.

use dynsys::{horizon, Contraction, Logistic, Map1D, Translation};

/// One row: a system with its horizon at a tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonRow {
    /// System name.
    pub system: &'static str,
    /// Perturbation δ.
    pub delta: f64,
    /// Tolerance ε.
    pub epsilon: f64,
    /// First step exceeding ε, or `None` (never within the budget).
    pub horizon: Option<usize>,
}

/// Computes horizons for the three canonical systems across δ values.
pub fn rows() -> Vec<HorizonRow> {
    let eps = 0.01;
    let mut out = Vec::new();
    for delta in [1e-9, 1e-6, 1e-3] {
        out.push(HorizonRow {
            system: Logistic { r: 4.0 }.name(),
            delta,
            epsilon: eps,
            horizon: horizon(&Logistic { r: 4.0 }, 0.2, delta, eps, 2000),
        });
        out.push(HorizonRow {
            system: Translation { alpha: 0.3 }.name(),
            delta,
            epsilon: eps,
            horizon: horizon(&Translation { alpha: 0.3 }, 0.2, delta, eps, 2000),
        });
        out.push(HorizonRow {
            system: Contraction { c: 0.5 }.name(),
            delta,
            epsilon: eps,
            horizon: horizon(&Contraction { c: 0.5 }, 0.2, delta, eps, 2000),
        });
    }
    out
}

/// Renders the table.
pub fn render(rows: &[HorizonRow]) -> String {
    let mut out = String::new();
    out.push_str("Bernardes-style prediction horizons (eps = 0.01, 2000-step budget)\n");
    out.push_str(&format!(
        "{:<14} {:>10} {:>10}\n",
        "system", "delta", "horizon"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10.0e} {:>10}\n",
            r.system,
            r.delta,
            r.horizon.map_or(">2000".to_string(), |h| h.to_string())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_has_shortest_horizon_at_every_delta() {
        let all = rows();
        for delta in [1e-9, 1e-6, 1e-3] {
            let of = |name: &str| {
                all.iter()
                    .find(|r| r.system == name && r.delta == delta)
                    .unwrap()
                    .horizon
            };
            let chaotic = of("logistic").expect("chaos always escapes");
            if let Some(t) = of("translation") {
                assert!(chaotic < t);
            }
            assert_eq!(of("contraction"), None);
        }
    }
}
