//! Section 4's cache predictability metrics (Reineke et al.): evict and
//! fill per policy, computed by uncertainty-set exploration.

use mem_hierarchy::metrics::{compute_metrics, PredictabilityMetrics};
use mem_hierarchy::policy::{Bounded, Fifo, Lru, Mru, Plru};

/// One row: a policy at one associativity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRow {
    /// Policy name.
    pub policy: &'static str,
    /// Associativity.
    pub assoc: usize,
    /// Computed metrics.
    pub metrics: PredictabilityMetrics,
}

/// Computes the table for associativities 2 and 4 (matching the known
/// closed forms; larger `k` explodes combinatorially in debug builds).
pub fn rows() -> Vec<MetricsRow> {
    let mut out = Vec::new();
    for k in [2usize, 4] {
        let budget = 3 * k as u32 + 2;
        out.push(MetricsRow {
            policy: "LRU",
            assoc: k,
            metrics: compute_metrics(
                &Bounded {
                    inner: Lru,
                    assoc: k,
                },
                k,
                budget,
            ),
        });
        out.push(MetricsRow {
            policy: "FIFO",
            assoc: k,
            metrics: compute_metrics(
                &Bounded {
                    inner: Fifo,
                    assoc: k,
                },
                k,
                budget,
            ),
        });
        out.push(MetricsRow {
            policy: "PLRU",
            assoc: k,
            metrics: compute_metrics(&Plru, k, budget),
        });
        out.push(MetricsRow {
            policy: "MRU",
            assoc: k,
            metrics: compute_metrics(&Mru, k, budget.max(16)),
        });
    }
    out
}

/// Renders the table.
pub fn render(rows: &[MetricsRow]) -> String {
    let mut out = String::new();
    out.push_str("Cache-policy predictability metrics (Reineke et al., cited in §4)\n");
    out.push_str(&format!(
        "{:<8} {:>6} {:>8} {:>8} {:>16}\n",
        "policy", "assoc", "evict", "fill", "states explored"
    ));
    for r in rows {
        let fmt = |v: Option<u32>| v.map_or("inf".to_string(), |x| x.to_string());
        out.push_str(&format!(
            "{:<8} {:>6} {:>8} {:>8} {:>16}\n",
            r.policy,
            r.assoc,
            fmt(r.metrics.evict),
            fmt(r.metrics.fill),
            r.metrics.initial_states
        ));
    }
    out.push_str("\nclosed forms: LRU evict=fill=k; FIFO evict=2k-1, fill=3k-1; MRU fill=inf\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_closed_forms() {
        for r in rows() {
            let k = r.assoc as u32;
            match r.policy {
                "LRU" => {
                    assert_eq!(r.metrics.evict, Some(k));
                    assert_eq!(r.metrics.fill, Some(k));
                }
                "FIFO" => {
                    assert_eq!(r.metrics.evict, Some(2 * k - 1));
                    assert_eq!(r.metrics.fill, Some(3 * k - 1));
                }
                "MRU" => assert_eq!(r.metrics.fill, None),
                "PLRU" => {
                    // PLRU(2) == LRU(2); PLRU(4) strictly worse than LRU(4).
                    if k == 2 {
                        assert_eq!(r.metrics.evict, Some(2));
                    } else {
                        assert!(r.metrics.evict.unwrap() > 4);
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}
