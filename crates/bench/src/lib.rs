//! # repro-bench
//!
//! Experiment harnesses regenerating every figure, equation and table
//! of the paper. Each experiment is a pure function returning typed
//! rows, shared between the printable binaries (`src/bin/*`), the
//! criterion benches (`benches/*`) and the cross-crate integration
//! tests — so the numbers in `EXPERIMENTS.md` are reproducible from
//! code paths that are themselves under test.
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Figure 1 | [`fig1::distribution`] | `fig1_distribution` |
//! | Equation 4 | [`eq4::rows`] | `eq4_domino` |
//! | Table 1 (7 rows) | [`evidence::table1_evidence`] | `table1_evidence` |
//! | Table 2 (6 rows) | [`evidence::table2_evidence`] | `table2_evidence` |
//! | §4 cache metrics | [`cache_metrics::rows`] | `cache_metrics` |
//! | §4 dynamical systems | [`dynsys_horizon::rows`] | `dynsys_horizon` |

pub mod cache_metrics;
pub mod dynsys_horizon;
pub mod eq4;
pub mod evidence;
pub mod fig1;

/// Formats a slice of `(label, value)` pairs as an aligned two-column
/// table.
pub fn two_column(rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (l, v) in rows {
        out.push_str(&format!("{l:<w$}  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn two_column_aligns() {
        let s = super::two_column(&[
            ("a".to_string(), "1".to_string()),
            ("long-label".to_string(), "2".to_string()),
        ]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].find('1'), lines[1].find('2'));
    }
}
