//! Quantitative evidence for every row of Tables 1 and 2.
//!
//! For each surveyed approach the paper names a quality measure; here
//! each row gets an experiment producing that measure for the
//! *baseline* design and for the *predictability-enhancing* design.
//! The reproduction claim is about shape: the enhanced design must
//! dominate the baseline under the row's own measure (typically driving
//! a variability to zero or replacing "no bound" with a finite bound).

use branch_pred::predictors::branch_stream;
use branch_pred::wcet_oriented::misprediction_bounds;
use dram_sim::controller::{simulate, worst_latency, Controller, Request};
use dram_sim::device::{DramDevice, DramTiming};
use dram_sim::refresh::{task_time, RefreshScheme};
use interconnect_sim::bus::{Arbiter, BusRequest};
use interconnect_sim::composability::{bus_composability_gap, noc_composability_gap};
use interconnect_sim::noc::{Mesh, NocMode, NocPacket};
use mem_hierarchy::cache::CacheConfig;
use mem_hierarchy::locking::{
    line_frequencies, select_by_frequency, select_conflict_aware, unlocked_guaranteed_weight,
};
use mem_hierarchy::method_cache::{icache_distinct_states, MethodCache};
use mem_hierarchy::split_cache::{split_classifiability, unified_classifiability, workload};
use pipeline_sim::latency::LatencyTable;
use pipeline_sim::ooo::{OooConfig, OooCore, OooState};
use pipeline_sim::preschedule::block_time_variability;
use pipeline_sim::pret::{run_pret, thread_duration, PretOp};
use pipeline_sim::smt::{co_runner, rt_alone_time, run_smt, SmtPolicy};
use pipeline_sim::vtrace::{run_vtrace, VtraceConfig};
use predictability_core::catalog;
use tinyisa::cfg::Cfg;
use tinyisa::exec::Machine;
use tinyisa::kernels;
use tinyisa::reg::Reg;

/// One row of evidence: the measured quality for baseline and enhanced
/// designs, in the units of the row's own quality measure.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRow {
    /// Catalog id (matches `predictability_core::catalog`).
    pub id: &'static str,
    /// What is measured.
    pub measure: String,
    /// Baseline design description and value.
    pub baseline: (String, f64),
    /// Predictability-enhancing design description and value.
    pub enhanced: (String, f64),
    /// Whether smaller is better for this measure.
    pub smaller_is_better: bool,
}

impl EvidenceRow {
    /// True if the enhanced design dominates the baseline under the
    /// row's measure.
    pub fn improved(&self) -> bool {
        if self.smaller_is_better {
            self.enhanced.1 <= self.baseline.1
        } else {
            self.enhanced.1 >= self.baseline.1
        }
    }
}

fn ooo_entry_states() -> Vec<OooState> {
    pipeline_sim::ooo::default_entry_states()
}

/// T1.R1 — WCET-oriented static branch prediction.
pub fn branch_static() -> EvidenceRow {
    let k = kernels::popcount_branchy(12);
    let m = Machine::default();
    let streams: Vec<Vec<(u32, u32, bool)>> = (0..24i64)
        .map(|x| {
            let run = m
                .run_traced_with(&k.program, &[(Reg::new(1), x * 173 % 4096)], &[])
                .unwrap();
            branch_stream(&run.trace)
        })
        .collect();
    let b = misprediction_bounds(&streams);
    EvidenceRow {
        id: "branch-static",
        measure: "sound bound on mispredictions (popcount, 24 inputs)".into(),
        baseline: (
            "2-bit dynamic, unknown initial state".into(),
            b.dynamic_unknown_init_bound as f64,
        ),
        enhanced: ("WCET-oriented static hints".into(), b.static_bound as f64),
        smaller_is_better: true,
    }
}

/// T1.R2 — Rochange/Sainrat prescheduling.
pub fn preschedule() -> EvidenceRow {
    let k = kernels::bubble_sort(6, 256);
    let mem: Vec<(u32, i64)> = (0..6).map(|i| (256 + i, (6 - i) as i64)).collect();
    let run = Machine::default()
        .run_traced_with(&k.program, &[], &mem)
        .unwrap();
    let cfg = Cfg::build(&k.program);
    let core = OooCore::default();
    let raw = block_time_variability(&core, &cfg, &run.trace, &ooo_entry_states(), false);
    let pre = block_time_variability(&core, &cfg, &run.trace, &ooo_entry_states(), true);
    EvidenceRow {
        id: "preschedule",
        measure: "worst per-basic-block time variability over entry states (cycles)".into(),
        baseline: ("raw out-of-order pipeline".into(), raw as f64),
        enhanced: ("basic-block regulated mode".into(), pre as f64),
        smaller_is_better: true,
    }
}

/// T1.R3 — time-predictable SMT.
pub fn smt() -> EvidenceRow {
    let rt: Vec<u64> = vec![1, 2, 1, 3, 1, 1, 2, 1, 1, 2, 1, 1, 3, 1];
    let alone = rt_alone_time(&rt);
    let mut fair_spread = (u64::MAX, 0u64);
    let mut prio_spread = (u64::MAX, 0u64);
    for seed in 0..24 {
        let co = co_runner(seed, 40);
        let f = run_smt(&[rt.clone(), co.clone()], SmtPolicy::Fair).finish[0];
        let p = run_smt(&[rt.clone(), co], SmtPolicy::RtPriority).finish[0];
        fair_spread = (fair_spread.0.min(f), fair_spread.1.max(f));
        prio_spread = (prio_spread.0.min(p), prio_spread.1.max(p));
        debug_assert_eq!(p, alone);
    }
    EvidenceRow {
        id: "smt",
        measure: "RT-thread completion-time variability over 24 co-runner mixes (cycles)".into(),
        baseline: ("fair SMT".into(), (fair_spread.1 - fair_spread.0) as f64),
        enhanced: (
            "RT-priority SMT".into(),
            (prio_spread.1 - prio_spread.0) as f64,
        ),
        smaller_is_better: true,
    }
}

/// T1.R4 — CoMPSoC composability (bus + NoC).
pub fn compsoc() -> EvidenceRow {
    let app0: Vec<BusRequest> = (0..10u64)
        .map(|k| BusRequest {
            master: 0,
            arrival: k * 12,
        })
        .collect();
    let mut co = Vec::new();
    for m in 1..4usize {
        for k in 0..50u64 {
            co.push(BusRequest {
                master: m,
                arrival: k,
            });
        }
    }
    let gap_fcfs = bus_composability_gap(Arbiter::Fcfs, 4, 2, &app0, &co);
    let gap_tdma = bus_composability_gap(Arbiter::Tdma, 4, 2, &app0, &co);
    // NoC side (reported alongside; both must agree in direction).
    let mesh = Mesh {
        width: 3,
        height: 3,
    };
    let pkts: Vec<NocPacket> = (0..5u64)
        .map(|k| NocPacket {
            app: 0,
            src: (0, 0),
            dst: (2, 1),
            inject: k * 25,
            flits: 4,
        })
        .collect();
    let co_pkts: Vec<NocPacket> = (0..30u64)
        .map(|k| NocPacket {
            app: 1,
            src: (0, 0),
            dst: (2, 1),
            inject: k,
            flits: 6,
        })
        .collect();
    let noc_rr = noc_composability_gap(mesh, NocMode::RoundRobin, &pkts, &co_pkts);
    let noc_tdm = noc_composability_gap(mesh, NocMode::Tdm { n_apps: 4 }, &pkts, &co_pkts);
    EvidenceRow {
        id: "compsoc",
        measure: format!(
            "worst latency shift of app 0 due to co-apps (bus; NoC RR shift = {noc_rr}, NoC TDM shift = {noc_tdm})"
        ),
        baseline: ("FCFS bus".into(), gap_fcfs as f64),
        enhanced: ("TDMA bus + TDM NoC".into(), (gap_tdma + noc_tdm) as f64),
        smaller_is_better: true,
    }
}

/// T1.R5 — PRET thread interleaving.
pub fn pret() -> EvidenceRow {
    let prog = vec![PretOp::Work; 16];
    let alone = thread_duration(&prog, 4);
    // Variability across arbitrary co-thread programs.
    let mut spread = (u64::MAX, 0u64);
    for other_len in [0usize, 5, 100, 1000] {
        let others = vec![PretOp::Work; other_len];
        let run = run_pret(&[prog.clone(), others], 4);
        spread = (spread.0.min(run.finish[0]), spread.1.max(run.finish[0]));
    }
    debug_assert_eq!(spread.0, alone);
    // Baseline: an SMT-style fair share of one pipeline.
    let rt: Vec<u64> = vec![1; 16];
    let mut fair = (u64::MAX, 0u64);
    for seed in 0..8 {
        let co = co_runner(seed, 64);
        let f = run_smt(&[rt.clone(), co], SmtPolicy::Fair).finish[0];
        fair = (fair.0.min(f), fair.1.max(f));
    }
    EvidenceRow {
        id: "pret",
        measure: "task-time variability over co-runner contexts (cycles)".into(),
        baseline: (
            "shared pipeline, fair issue".into(),
            (fair.1 - fair.0) as f64,
        ),
        enhanced: (
            "thread-interleaved PRET pipeline".into(),
            (spread.1 - spread.0) as f64,
        ),
        smaller_is_better: true,
    }
}

/// T1.R6 — virtual traces.
pub fn vtrace() -> EvidenceRow {
    let core = OooCore::new(OooConfig {
        rob: 8,
        latencies: LatencyTable {
            div_variable: true,
            ..LatencyTable::default()
        },
    });
    let k = kernels::bubble_sort(6, 256);
    let mem: Vec<(u32, i64)> = (0..6).map(|i| (256 + i, ((i * 13) % 7) as i64)).collect();
    let trace = Machine::default()
        .run_traced_with(&k.program, &[], &mem)
        .unwrap()
        .trace;
    let raw: Vec<u64> = ooo_entry_states()
        .iter()
        .map(|&q| core.run(&trace, q))
        .collect();
    let vt: Vec<u64> = ooo_entry_states()
        .iter()
        .map(|&q| run_vtrace(&core, VtraceConfig::default(), &trace, q))
        .collect();
    EvidenceRow {
        id: "vtrace",
        measure: "path-time variability over pipeline entry states (cycles)".into(),
        baseline: (
            "raw OoO with variable-latency ops".into(),
            (raw.iter().max().unwrap() - raw.iter().min().unwrap()) as f64,
        ),
        enhanced: (
            "virtual traces (reset + constant ops)".into(),
            (vt.iter().max().unwrap() - vt.iter().min().unwrap()) as f64,
        ),
        smaller_is_better: true,
    }
}

/// T1.R7 — future-architecture recommendations (LRU, compositional
/// pipelines, TDMA): state-induced execution-time variability of the
/// whole platform.
pub fn future_arch() -> EvidenceRow {
    use pipeline_sim::domino::schneider_example;
    use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
    use pipeline_sim::latency::PerfectMem;
    // Domino machine (non-compositional): gap after 16 iterations.
    let cfg = schneider_example();
    let (t1, t2) = cfg.times(16);
    let domino_gap = t2.abs_diff(t1);
    // Compositional in-order: worst state-induced gap (bounded warmup).
    let k = kernels::sum_loop(16);
    let trace = Machine::default().run_traced(&k.program).unwrap().trace;
    let p = InOrderPipeline::default();
    let times: Vec<u64> = (0..=3u64)
        .map(|w| {
            let mut mem = PerfectMem::default();
            p.run(&trace, InOrderState { warmup: w }, &mut mem, None)
        })
        .collect();
    let compositional_gap = times.iter().max().unwrap() - times.iter().min().unwrap();
    EvidenceRow {
        id: "future-arch",
        measure: "state-induced execution-time gap, 16-iteration loop (cycles)".into(),
        baseline: (
            "domino-prone pipeline (PPC755-style)".into(),
            domino_gap as f64,
        ),
        enhanced: (
            "compositional in-order (ARM7-style)".into(),
            compositional_gap as f64,
        ),
        smaller_is_better: true,
    }
}

/// T2.R1 — method cache.
pub fn method_cache() -> EvidenceRow {
    let k = kernels::call_tree(5);
    let trace = Machine::default().run_traced(&k.program).unwrap().trace;
    let mut mc = MethodCache::new(64);
    let run = mc.run(&k.program, &trace);
    assert!(run.misses_only_at_call_ret());
    let icache_states = icache_distinct_states(CacheConfig::new(4, 2, 8), &trace);
    EvidenceRow {
        id: "method-cache",
        measure: "analysis-state count on the call-tree workload".into(),
        baseline: ("conventional I-cache".into(), icache_states as f64),
        enhanced: ("method cache".into(), run.distinct_states as f64),
        smaller_is_better: true,
    }
}

/// T2.R2 — split caches.
pub fn split_cache() -> EvidenceRow {
    let cfg = CacheConfig::new(4, 2, 16);
    let stream = workload(16, 1);
    let uni = unified_classifiability(cfg, &stream);
    let split = split_classifiability(cfg, cfg, 4, &stream);
    EvidenceRow {
        id: "split-cache",
        measure: "fraction of data accesses statically classified as hits".into(),
        baseline: ("unified data cache".into(), uni.fraction()),
        enhanced: ("split caches + fully-assoc heap".into(), split.fraction()),
        smaller_is_better: false,
    }
}

/// T2.R3 — static cache locking (under preemption).
pub fn locking() -> EvidenceRow {
    let k = kernels::matmul(4, 256, 272, 288);
    let cfg = Cfg::build(&k.program);
    let cache = CacheConfig::new(2, 1, 8);
    let freqs = line_frequencies(&k.program, &cfg, cache);
    let greedy = select_by_frequency(&freqs, cache);
    let conflict = select_conflict_aware(&freqs, cache);
    let best_locked = greedy
        .guaranteed_hit_weight
        .max(conflict.guaranteed_hit_weight);
    let unlocked = unlocked_guaranteed_weight(&k.program, &cfg, cache, true);
    EvidenceRow {
        id: "locking",
        measure: "statically guaranteed hit weight under preemption".into(),
        baseline: ("unlocked cache (must-analysis)".into(), unlocked as f64),
        enhanced: (
            "locked cache (best of 2 algorithms)".into(),
            best_locked as f64,
        ),
        smaller_is_better: false,
    }
}

/// T2.R4 — predictable DRAM controllers.
pub fn dram_ctrl() -> EvidenceRow {
    let timing = DramTiming::default();
    let n = 8usize;
    let mk_reqs = |n_clients: usize| -> Vec<Request> {
        let mut reqs = Vec::new();
        for c in 0..n_clients {
            for k in 0..16u64 {
                reqs.push(Request {
                    client: c,
                    arrival: k * 2 + c as u64,
                    bank: ((k + c as u64) % 4) as usize,
                    row: k % 8,
                });
            }
        }
        reqs
    };
    let mut dev = DramDevice::new(4, timing);
    let frfcfs = simulate(Controller::FrFcfs, &mut dev, &mk_reqs(n), n);
    let frfcfs_worst = worst_latency(&frfcfs, 0).unwrap();
    let slot = timing.t_rcd + timing.t_cl + timing.t_rp;
    let amc = Controller::Amc { slot };
    let bound = amc.latency_bound(timing, n, 0).unwrap();
    EvidenceRow {
        id: "dram-ctrl",
        measure: format!(
            "worst client-0 latency, {n} clients (cycles; AMC analytic bound {bound})"
        ),
        baseline: ("FR-FCFS (no bound exists)".into(), frfcfs_worst as f64),
        enhanced: ("AMC TDM (bounded)".into(), bound as f64),
        smaller_is_better: true,
    }
}

/// T2.R5 — predictable DRAM refresh.
pub fn refresh() -> EvidenceRow {
    let timing = DramTiming::default();
    let times: Vec<u64> = (0..timing.t_refi)
        .map(|phase| task_time(RefreshScheme::Distributed, timing, 50, 4, phase))
        .collect();
    let dist_var = times.iter().max().unwrap() - times.iter().min().unwrap();
    let burst_times: Vec<u64> = (0..timing.t_refi)
        .map(|phase| task_time(RefreshScheme::Burst, timing, 50, 4, phase))
        .collect();
    let burst_var = burst_times.iter().max().unwrap() - burst_times.iter().min().unwrap();
    EvidenceRow {
        id: "refresh",
        measure: "task-time variability over refresh phases (cycles)".into(),
        baseline: ("distributed refresh".into(), dist_var as f64),
        enhanced: ("burst refresh between tasks".into(), burst_var as f64),
        smaller_is_better: true,
    }
}

/// T2.R6 — single-path paradigm: input-induced predictability.
pub fn single_path() -> EvidenceRow {
    use predictability_core::system::{Cycles, FnSystem};
    use predictability_core::timing::input_induced;
    let src = r"
        li   r2, 5
        blt  r1, r2, then
        sub  r3, r1, r2
        mul  r4, r3, r3
        jmp  join
    then:
        sub  r3, r2, r1
    join:
        halt
    ";
    let prog = tinyisa::asm::assemble(src).unwrap();
    let conv = singlepath::if_convert(&prog).unwrap().program;
    let m = Machine::default();
    let time_of = |p: &tinyisa::program::Program, x: i64| -> Cycles {
        let run = m.run_traced_with(p, &[(Reg::new(1), x)], &[]).unwrap();
        let pipe = pipeline_sim::inorder::InOrderPipeline::default();
        let mut mem = pipeline_sim::latency::PerfectMem::default();
        Cycles::new(pipe.run(
            &run.trace,
            pipeline_sim::inorder::InOrderState { warmup: 0 },
            &mut mem,
            None,
        ))
    };
    let states = [0u8];
    let inputs: Vec<i64> = (-10..=10).collect();
    let orig_prog = prog.clone();
    let orig_sys = FnSystem::new(move |_: &u8, i: &i64| time_of(&orig_prog, *i));
    let iipr_orig = input_induced(&orig_sys, &states, &inputs).unwrap().ratio();
    let m2 = Machine::default();
    let conv_sys = FnSystem::new(move |_: &u8, i: &i64| {
        let run = m2
            .run_traced_with(&conv, &[(Reg::new(1), *i)], &[])
            .unwrap();
        let pipe = pipeline_sim::inorder::InOrderPipeline::default();
        let mut mem = pipeline_sim::latency::PerfectMem::default();
        Cycles::new(pipe.run(
            &run.trace,
            pipeline_sim::inorder::InOrderState { warmup: 0 },
            &mut mem,
            None,
        ))
    });
    let iipr_conv = input_induced(&conv_sys, &states, &inputs).unwrap().ratio();
    EvidenceRow {
        id: "single-path",
        measure: "input-induced predictability IIPr (Definition 5)".into(),
        baseline: ("branchy if/else".into(), iipr_orig),
        enhanced: ("single-path (if-converted)".into(), iipr_conv),
        smaller_is_better: false,
    }
}

/// All Table 1 rows.
pub fn table1_evidence() -> Vec<EvidenceRow> {
    vec![
        branch_static(),
        preschedule(),
        smt(),
        compsoc(),
        pret(),
        vtrace(),
        future_arch(),
    ]
}

/// All Table 2 rows.
pub fn table2_evidence() -> Vec<EvidenceRow> {
    vec![
        method_cache(),
        split_cache(),
        locking(),
        dram_ctrl(),
        refresh(),
        single_path(),
    ]
}

/// Renders evidence rows with their catalog context.
pub fn render(rows: &[EvidenceRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let cat = catalog::by_id(r.id).expect("evidence row must exist in catalog");
        out.push_str(&format!("== {} [{}]\n", cat.approach, r.id));
        out.push_str(&format!("   measure:  {}\n", r.measure));
        out.push_str(&format!(
            "   baseline: {:<42} {:>12.4}\n",
            r.baseline.0, r.baseline.1
        ));
        out.push_str(&format!(
            "   enhanced: {:<42} {:>12.4}\n",
            r.enhanced.0, r.enhanced.1
        ));
        out.push_str(&format!(
            "   verdict:  {}\n\n",
            if r.improved() {
                "improved (as the paper's casting predicts)"
            } else {
                "NOT improved — check the model"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_row_has_evidence_and_improves() {
        let mut ids: Vec<&str> = Vec::new();
        for row in table1_evidence().iter().chain(table2_evidence().iter()) {
            assert!(
                catalog::by_id(row.id).is_some(),
                "{} missing from catalog",
                row.id
            );
            assert!(row.improved(), "{} did not improve: {row:?}", row.id);
            ids.push(row.id);
        }
        assert_eq!(ids.len(), 13, "all thirteen rows need evidence");
    }

    #[test]
    fn zero_variability_rows_reach_exactly_zero() {
        for row in [smt(), pret(), preschedule(), vtrace(), refresh()] {
            assert_eq!(row.enhanced.1, 0.0, "{} should reach zero", row.id);
            assert!(row.baseline.1 > 0.0, "{} baseline must vary", row.id);
        }
    }

    #[test]
    fn single_path_reaches_perfect_iipr() {
        let r = single_path();
        assert!(r.baseline.1 < 1.0);
        assert_eq!(r.enhanced.1, 1.0);
    }

    #[test]
    fn render_includes_every_approach_name() {
        let rows = table2_evidence();
        let s = render(&rows);
        assert!(s.contains("Method cache"));
        assert!(s.contains("Single-path"));
    }
}
