//! Figure 1: the execution-time distribution with
//! `LB ≤ BCET ≤ observed ≤ WCET ≤ UB`.
//!
//! Platform: the compositional in-order pipeline with an LRU data
//! cache. Uncertainty: `Q` = pipeline warmup (0..3 residual cycles) ×
//! initial cache contents (cold / partially warmed); `I` = input data
//! permutations of the bubble-sort kernel. Bounds: the `wcet-analysis`
//! crate, with the UB widened by the maximal warmup (the warmup is part
//! of `Q`, not of the program).

use mem_hierarchy::cache::{lru_cache, CacheConfig};
use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
use pipeline_sim::latency::CachedMem;
use predictability_core::bounds::{Histogram, TimeBounds};
use predictability_core::system::Cycles;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tinyisa::exec::Machine;
use tinyisa::kernels;
use wcet_analysis::{bounds, WcetConfig};

const N: u32 = 8;
const BASE: u32 = 256;
const WARMUP_MAX: u64 = 3;
const HIT: u64 = 1;
const MISS: u64 = 10;

fn cache_config() -> CacheConfig {
    CacheConfig::new(4, 2, 8)
}

/// One sampled execution: a warmup state, a cache-warming prefix length
/// and an input permutation seed.
fn observe(warmup: u64, warm_lines: usize, perm_seed: u64) -> Cycles {
    let k = kernels::bubble_sort(N, BASE);
    let mut values: Vec<i64> = (0..N as i64).collect();
    let mut rng = StdRng::seed_from_u64(perm_seed);
    values.shuffle(&mut rng);
    let mem: Vec<(u32, i64)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (BASE + i as u32, v))
        .collect();
    let run = Machine::default()
        .run_traced_with(&k.program, &[], &mem)
        .unwrap();
    let mut cached = CachedMem {
        cache: lru_cache(cache_config()),
        hit_latency: HIT,
        miss_latency: MISS,
    };
    // Warm part of the data region (a component of the initial state Q).
    for line in 0..warm_lines {
        cached.cache.access((BASE as u64 * 4) + line as u64 * 8);
    }
    let pipeline = InOrderPipeline::default();
    Cycles::new(pipeline.run(&run.trace, InOrderState { warmup }, &mut cached, None))
}

/// Samples the distribution over `Q x I` and computes the static
/// bounds; returns `(observations, bounds)`.
pub fn distribution(input_samples: u64) -> (Vec<Cycles>, TimeBounds) {
    let mut obs = Vec::new();
    for warmup in 0..=WARMUP_MAX {
        for warm_lines in [0usize, 2, 4] {
            for seed in 0..input_samples {
                obs.push(observe(warmup, warm_lines, seed));
            }
        }
    }
    let k = kernels::bubble_sort(N, BASE);
    let b = bounds(
        &k.program,
        &WcetConfig {
            mem_worst: MISS,
            mem_best: HIT,
            ..WcetConfig::default()
        },
    );
    let tb = TimeBounds::from_observations(&obs, Cycles::new(b.lb), Cycles::new(b.ub + WARMUP_MAX))
        .expect("static bounds must enclose all observations");
    (obs, tb)
}

/// Renders the figure as ASCII.
pub fn render(input_samples: u64, buckets: usize) -> String {
    let (obs, tb) = distribution(input_samples);
    let h = Histogram::new(&obs, buckets);
    let mut out = String::new();
    out.push_str(
        "Figure 1 — distribution of execution times (bubble sort, in-order + LRU cache)\n",
    );
    out.push_str(&format!(
        "{} observations over Q = warmup x cache-state, I = input permutations\n\n",
        obs.len()
    ));
    out.push_str(&h.render(Some(&tb), 50));
    out.push_str(&format!(
        "\ninherent predictability BCET/WCET = {:.4}; guaranteed LB/UB = {:.4}\n",
        tb.inherent_predictability(),
        tb.guaranteed_predictability()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_enclose_all_observations() {
        let (obs, tb) = distribution(8);
        for &o in &obs {
            assert!(tb.lb() <= o && o <= tb.ub());
        }
        assert!(tb.bcet() < tb.wcet(), "state/input variance must exist");
        assert!(tb.overestimation().get() > 0, "UB pessimism is visible");
    }

    #[test]
    fn render_mentions_all_four_bounds() {
        let s = render(4, 10);
        for needle in ["LB=", "BCET", "WCET", "UB="] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
