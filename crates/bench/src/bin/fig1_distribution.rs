//! Regenerates Figure 1 as an ASCII histogram with LB/BCET/WCET/UB.
fn main() {
    print!("{}", repro_bench::fig1::render(16, 14));
}
