//! Regenerates the Equation 4 series (9n+1 vs 12n) and the domino
//! analysis verdict.
fn main() {
    print!("{}", repro_bench::eq4::render(16));
}
