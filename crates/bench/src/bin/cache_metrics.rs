//! Regenerates the evict/fill predictability metrics table (§4).
fn main() {
    print!(
        "{}",
        repro_bench::cache_metrics::render(&repro_bench::cache_metrics::rows())
    );
}
