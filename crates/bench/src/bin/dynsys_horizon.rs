//! Regenerates the dynamical-system prediction-horizon table (§4).
fn main() {
    print!(
        "{}",
        repro_bench::dynsys_horizon::render(&repro_bench::dynsys_horizon::rows())
    );
}
