//! Regenerates Table 1 (as data) and the quantitative evidence for each
//! of its seven rows. Pass `--catalog` to print only the table itself.
use predictability_core::catalog;
fn main() {
    let catalog_only = std::env::args().any(|a| a == "--catalog");
    println!("{}", catalog::format_table(&catalog::table1()));
    if !catalog_only {
        print!(
            "{}",
            repro_bench::evidence::render(&repro_bench::evidence::table1_evidence())
        );
    }
}
