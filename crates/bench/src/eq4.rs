//! Equation 4: `SIPr_{p_n} ≤ (9n+1)/12n` from the PPC 755 domino
//! effect, reproduced on the dual-unit greedy-dispatch machine.

use pipeline_sim::domino::{schneider_example, DominoConfig};
use predictability_core::domino::{analyze_domino, equation4_bound, DominoAnalysis};
use predictability_core::system::Cycles;

/// One row of the Equation 4 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq4Row {
    /// Loop iterations.
    pub n: u32,
    /// Simulated `T(q1*, p_n)` (paper: `9n + 1`).
    pub t_q1: u64,
    /// Simulated `T(q2*, p_n)` (paper: `12n`).
    pub t_q2: u64,
    /// Simulated SIPr bound `min/max`.
    pub sipr_bound: f64,
    /// The paper's closed form `(9n+1)/12n`.
    pub paper_bound: f64,
}

/// Computes the series for `n = 1..=max_n`.
pub fn rows(max_n: u32) -> Vec<Eq4Row> {
    let cfg = schneider_example();
    (1..=max_n)
        .map(|n| {
            let (t1, t2) = cfg.times(n);
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            Eq4Row {
                n,
                t_q1: t1,
                t_q2: t2,
                sipr_bound: lo as f64 / hi as f64,
                paper_bound: equation4_bound(n),
            }
        })
        .collect()
}

/// Runs the full domino analysis on the simulated family.
pub fn analysis(max_n: u32) -> DominoAnalysis {
    let cfg: DominoConfig = schneider_example();
    let ns: Vec<u32> = (1..=max_n).collect();
    analyze_domino(
        |n| {
            let (t1, t2) = cfg.times(n);
            (Cycles::new(t1), Cycles::new(t2))
        },
        &ns,
        0.5,
    )
}

/// Renders the table plus the analysis summary.
pub fn render(max_n: u32) -> String {
    let mut out = String::new();
    out.push_str("Equation 4 — domino effect, SIPr(p_n) <= (9n+1)/12n\n");
    out.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>12} {:>12}\n",
        "n", "T(q1*)", "T(q2*)", "sim SIPr", "paper"
    ));
    for r in rows(max_n) {
        out.push_str(&format!(
            "{:>4} {:>10} {:>10} {:>12.6} {:>12.6}\n",
            r.n, r.t_q1, r.t_q2, r.sipr_bound, r.paper_bound
        ));
    }
    let a = analysis(max_n.max(8));
    out.push_str(&format!(
        "\nverdict: {:?}\nSIPr limit (n -> inf): {:.4} (paper: 3/4)\n",
        a.verdict, a.sipr_limit
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictability_core::domino::DominoVerdict;

    #[test]
    fn series_matches_paper_exactly() {
        for r in rows(32) {
            assert_eq!(r.t_q1, 9 * r.n as u64 + 1);
            assert_eq!(r.t_q2, 12 * r.n as u64);
            assert!((r.sipr_bound - r.paper_bound).abs() < 1e-12);
        }
    }

    #[test]
    fn analysis_confirms_domino() {
        let a = analysis(24);
        assert!(matches!(a.verdict, DominoVerdict::DominoEffect { .. }));
        assert!((a.sipr_limit - 0.75).abs() < 1e-9);
    }
}
