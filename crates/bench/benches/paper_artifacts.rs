//! Criterion benches regenerating (and timing) every paper artifact:
//! one bench group per figure/equation/table, plus the §4 metrics.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_distribution");
    for samples in [4u64, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            b.iter(|| repro_bench::fig1::distribution(black_box(s)));
        });
    }
    g.finish();
}

fn bench_eq4(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq4_domino");
    for n in [16u32, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| repro_bench::eq4::rows(black_box(n)));
        });
    }
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_evidence");
    g.sample_size(10);
    g.bench_function("branch_static", |b| {
        b.iter(repro_bench::evidence::branch_static)
    });
    g.bench_function("preschedule", |b| {
        b.iter(repro_bench::evidence::preschedule)
    });
    g.bench_function("smt", |b| b.iter(repro_bench::evidence::smt));
    g.bench_function("compsoc", |b| b.iter(repro_bench::evidence::compsoc));
    g.bench_function("pret", |b| b.iter(repro_bench::evidence::pret));
    g.bench_function("vtrace", |b| b.iter(repro_bench::evidence::vtrace));
    g.bench_function("future_arch", |b| {
        b.iter(repro_bench::evidence::future_arch)
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_evidence");
    g.sample_size(10);
    g.bench_function("method_cache", |b| {
        b.iter(repro_bench::evidence::method_cache)
    });
    g.bench_function("split_cache", |b| {
        b.iter(repro_bench::evidence::split_cache)
    });
    g.bench_function("locking", |b| b.iter(repro_bench::evidence::locking));
    g.bench_function("dram_ctrl", |b| b.iter(repro_bench::evidence::dram_ctrl));
    g.bench_function("refresh", |b| b.iter(repro_bench::evidence::refresh));
    g.bench_function("single_path", |b| {
        b.iter(repro_bench::evidence::single_path)
    });
    g.finish();
}

fn bench_cache_metrics(c: &mut Criterion) {
    use mem_hierarchy::metrics::compute_metrics;
    use mem_hierarchy::policy::{Bounded, Fifo, Lru};
    let mut g = c.benchmark_group("cache_metrics");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        g.bench_with_input(BenchmarkId::new("lru", k), &k, |b, &k| {
            b.iter(|| {
                compute_metrics(
                    &Bounded {
                        inner: Lru,
                        assoc: k,
                    },
                    k,
                    3 * k as u32 + 2,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("fifo", k), &k, |b, &k| {
            b.iter(|| {
                compute_metrics(
                    &Bounded {
                        inner: Fifo,
                        assoc: k,
                    },
                    k,
                    3 * k as u32 + 2,
                )
            });
        });
    }
    g.finish();
}

fn bench_dynsys(c: &mut Criterion) {
    c.bench_function("dynsys_horizons", |b| {
        b.iter(repro_bench::dynsys_horizon::rows)
    });
}

criterion_group!(
    benches,
    bench_fig1,
    bench_eq4,
    bench_table1,
    bench_table2,
    bench_cache_metrics,
    bench_dynsys
);
criterion_main!(benches);
