//! Criterion benches of the substrate simulators themselves (ablation:
//! how expensive is each model per simulated unit of work?).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    use tinyisa::exec::Machine;
    use tinyisa::kernels;
    let k = kernels::matmul(6, 256, 292, 328);
    let m = Machine::default();
    c.bench_function("tinyisa_matmul6_traced", |b| {
        b.iter(|| m.run_traced(black_box(&k.program)).unwrap());
    });
}

fn bench_pipelines(c: &mut Criterion) {
    use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
    use pipeline_sim::latency::PerfectMem;
    use pipeline_sim::ooo::{OooCore, OooState};
    use tinyisa::exec::Machine;
    use tinyisa::kernels;
    let k = kernels::bubble_sort(8, 256);
    let trace = Machine::default().run_traced(&k.program).unwrap().trace;
    let mut g = c.benchmark_group("pipelines");
    g.bench_function("inorder", |b| {
        let p = InOrderPipeline::default();
        b.iter(|| {
            let mut mem = PerfectMem::default();
            p.run(
                black_box(&trace),
                InOrderState { warmup: 0 },
                &mut mem,
                None,
            )
        });
    });
    g.bench_function("ooo", |b| {
        let core = OooCore::default();
        b.iter(|| core.run(black_box(&trace), OooState::EMPTY));
    });
    g.finish();
}

fn bench_domino_machine(c: &mut Criterion) {
    use pipeline_sim::domino::schneider_example;
    let cfg = schneider_example();
    let mut g = c.benchmark_group("domino_machine");
    for n in [64u32, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| cfg.times(black_box(n)));
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    use mem_hierarchy::cache::{lru_cache, CacheConfig};
    let trace: Vec<u64> = (0..4096u64).map(|i| (i * 37) % 2048).collect();
    c.bench_function("lru_cache_4k_accesses", |b| {
        b.iter(|| {
            let mut cache = lru_cache(CacheConfig::new(16, 4, 16));
            cache.run_trace(black_box(&trace))
        });
    });
}

fn bench_analyses(c: &mut Criterion) {
    use mem_hierarchy::analysis::{analyze_icache, InitialCache};
    use mem_hierarchy::cache::CacheConfig;
    use tinyisa::cfg::Cfg;
    use tinyisa::kernels;
    use wcet_analysis::{bounds, WcetConfig};
    let k = kernels::matmul(4, 256, 272, 288);
    let cfg = Cfg::build(&k.program);
    let mut g = c.benchmark_group("analyses");
    g.bench_function("icache_must_may", |b| {
        b.iter(|| {
            analyze_icache(
                black_box(&k.program),
                &cfg,
                CacheConfig::new(4, 2, 8),
                InitialCache::Cold,
            )
        });
    });
    g.bench_function("wcet_bounds", |b| {
        b.iter(|| bounds(black_box(&k.program), &WcetConfig::default()));
    });
    g.finish();
}

fn bench_interconnect_dram(c: &mut Criterion) {
    use dram_sim::controller::{simulate, Controller, Request};
    use dram_sim::device::{DramDevice, DramTiming};
    use interconnect_sim::bus::{simulate_bus, Arbiter, BusRequest};
    let reqs: Vec<Request> = (0..256u64)
        .map(|k| Request {
            client: (k % 4) as usize,
            arrival: k,
            bank: (k % 4) as usize,
            row: k % 8,
        })
        .collect();
    let bus_reqs: Vec<BusRequest> = (0..512u64)
        .map(|k| BusRequest {
            master: (k % 4) as usize,
            arrival: k,
        })
        .collect();
    let mut g = c.benchmark_group("shared_resources");
    g.bench_function("dram_frfcfs_256", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(4, DramTiming::default());
            simulate(Controller::FrFcfs, &mut dev, black_box(&reqs), 4)
        });
    });
    g.bench_function("bus_tdma_512", |b| {
        b.iter(|| simulate_bus(Arbiter::Tdma, 4, 2, black_box(&bus_reqs)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_pipelines,
    bench_domino_machine,
    bench_cache,
    bench_analyses,
    bench_interconnect_dram
);
criterion_main!(benches);
