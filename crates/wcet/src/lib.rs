//! # wcet-analysis
//!
//! Static WCET/BCET bound computation for tinyisa programs — the sound
//! but incomplete analysis of the paper's Figure 1: it derives an upper
//! bound `UB ≥ WCET` and a lower bound `LB ≤ BCET`, with the gaps being
//! abstraction-induced over/under-estimation.
//!
//! The analysis is structural: per-basic-block times from the
//! compositional in-order pipeline model (worst/best case over the
//! entry-state set), loop bounds from the program's `.loopbound`
//! annotations, and a longest/shortest-path computation over the loop
//! nest. Optionally, the LRU must/may instruction-cache analysis of
//! `mem-hierarchy` refines fetch costs: always-hit fetches cost the hit
//! latency in the UB; everything unclassified is charged the miss
//! penalty (and dually for the LB).

use mem_hierarchy::analysis::{analyze_icache, Classification, InitialCache};
use mem_hierarchy::cache::CacheConfig;
use pipeline_sim::latency::LatencyTable;
use std::collections::BTreeMap;
use tinyisa::cfg::Cfg;
use tinyisa::instr::OpClass;
use tinyisa::program::Program;

/// Configuration of the bound computation.
#[derive(Debug, Clone, Copy)]
pub struct WcetConfig {
    /// Pipeline latencies (matching `pipeline_sim::inorder`).
    pub latencies: LatencyTable,
    /// Memory access cost charged for loads/stores (UB side).
    pub mem_worst: u64,
    /// Memory access cost on the LB side.
    pub mem_best: u64,
    /// Instruction-cache model, or `None` for a perfect fetch path.
    pub icache: Option<CacheConfig>,
    /// I-cache hit latency (added per fetch when `icache` is set).
    pub fetch_hit: u64,
    /// I-cache miss latency.
    pub fetch_miss: u64,
}

impl Default for WcetConfig {
    fn default() -> Self {
        WcetConfig {
            latencies: LatencyTable::default(),
            mem_worst: 10,
            mem_best: 1,
            icache: None,
            fetch_hit: 0,
            fetch_miss: 8,
        }
    }
}

/// The computed bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Lower bound on any execution time.
    pub lb: u64,
    /// Upper bound on any execution time.
    pub ub: u64,
}

/// Computes `(LB, UB)` for a program with annotated loop bounds.
///
/// Soundness argument (and the property the integration tests check
/// against exhaustive simulation): every instruction's UB cost
/// dominates its simulated cost, loop iterations are bounded by the
/// annotations, and the path choice maximises (resp. minimises) over
/// all structurally possible paths — so `LB ≤ T(q, i) ≤ UB` for every
/// state/input of the compositional in-order platform.
///
/// # Panics
///
/// Panics if the program is empty or its CFG is irreducible (a loop
/// header that is not a natural-loop header).
pub fn bounds(program: &Program, config: &WcetConfig) -> Bounds {
    let cfg = Cfg::build(program);
    let classification = config
        .icache
        .map(|cc| analyze_icache(program, &cfg, cc, InitialCache::Unknown).per_pc);

    // Per-instruction worst/best costs.
    let instr_cost = |pc: usize, worst: bool| -> u64 {
        let ins = program.instrs[pc];
        let lat = &config.latencies;
        let exec = match ins.class() {
            OpClass::Mul => lat.mul,
            OpClass::Div => {
                if lat.div_variable {
                    if worst {
                        lat.div
                    } else {
                        2
                    }
                } else {
                    lat.div
                }
            }
            _ => lat.alu,
        };
        let mem = match ins.class() {
            OpClass::Load | OpClass::Store => {
                if worst {
                    config.mem_worst
                } else {
                    config.mem_best
                }
            }
            _ => 0,
        };
        let fetch = match &classification {
            None => 0,
            Some(cls) => match cls[pc] {
                Classification::AlwaysHit => config.fetch_hit,
                Classification::AlwaysMiss => config.fetch_miss,
                Classification::NotClassified => {
                    if worst {
                        config.fetch_miss
                    } else {
                        config.fetch_hit
                    }
                }
            },
        };
        // Branch penalty: conservatively charged on the UB, not on LB.
        let branch = if worst && ins.is_cond_branch() {
            config.latencies.branch_penalty
        } else {
            0
        };
        exec + mem + fetch + branch
    };

    // Block-level costs.
    let block_cost = |b: usize, worst: bool| -> u64 {
        cfg.blocks[b].range().map(|pc| instr_cost(pc, worst)).sum()
    };

    // Loop bounds per header block.
    let loops = cfg.natural_loops();
    let mut header_bound: BTreeMap<usize, u64> = BTreeMap::new();
    for l in &loops {
        let pc = cfg.blocks[l.header].start;
        let bound = program
            .label_at(pc)
            .and_then(|lbl| program.loop_bounds.get(lbl).copied())
            .unwrap_or(1)
            .max(1) as u64;
        let e = header_bound.entry(l.header).or_insert(0);
        *e = (*e).max(bound);
    }

    // Structural longest/shortest path on the DAG obtained by cutting
    // back edges; loop bodies are weighted by their bounds. We compute
    // per-block "amplification" = product of bounds of enclosing loops.
    let mut amplification: Vec<u64> = vec![1; cfg.blocks.len()];
    for l in &loops {
        let bound = header_bound[&l.header];
        for &b in &l.body {
            amplification[b] = amplification[b].saturating_mul(bound);
        }
    }

    // DAG edges: forward edges only (back edges cut).
    let dominators = cfg.dominators();
    // An edge into a dominator (or a self-edge) is a back edge.
    let is_back_edge =
        |from: usize, to: usize| -> bool { dominators[from].contains(&to) || from == to };

    // Longest/shortest path by RPO dynamic programming over amplified
    // block costs. Terminal blocks are those with no forward succs.
    let rpo = cfg.reverse_post_order();
    // On the LB side loops may exit after zero iterations, so block
    // costs are counted once; only the UB multiplies by the bounds.
    let compute = |worst: bool| -> u64 {
        let amp = |b: usize| if worst { amplification[b] } else { 1 };
        let mut dist: Vec<Option<u64>> = vec![None; cfg.blocks.len()];
        dist[0] = Some(block_cost(0, worst).saturating_mul(amp(0)));
        let mut best_terminal: Option<u64> = None;
        for &b in &rpo {
            let Some(d) = dist[b] else { continue };
            let forward_succs: Vec<usize> = cfg.blocks[b]
                .succs
                .iter()
                .copied()
                .filter(|&s| !is_back_edge(b, s))
                .collect();
            if forward_succs.is_empty() {
                best_terminal = Some(match best_terminal {
                    None => d,
                    Some(t) => {
                        if worst {
                            t.max(d)
                        } else {
                            t.min(d)
                        }
                    }
                });
            }
            for s in forward_succs {
                let cost = block_cost(s, worst).saturating_mul(amp(s));
                let cand = d + cost;
                dist[s] = Some(match dist[s] {
                    None => cand,
                    Some(old) => {
                        if worst {
                            old.max(cand)
                        } else {
                            old.min(cand)
                        }
                    }
                });
            }
        }
        best_terminal.unwrap_or(0)
    };

    Bounds {
        lb: compute(false),
        ub: compute(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_sim::inorder::{InOrderPipeline, InOrderState};
    use pipeline_sim::latency::PerfectMem;
    use tinyisa::exec::Machine;
    use tinyisa::kernels;
    use tinyisa::reg::Reg;

    /// Simulated time on the matching platform (perfect memory at the
    /// LB cost, so UB-side memory pessimism is visible but sound).
    fn simulate(k: &tinyisa::kernels::Kernel, input: i64) -> u64 {
        let regs: Vec<(Reg, i64)> = k.input_regs.iter().map(|&r| (r, input)).collect();
        let mem: Vec<(u32, i64)> = k
            .input_mem
            .map(|(b, l)| (0..l).map(|i| (b + i, ((i * 7) % 23) as i64)).collect())
            .unwrap_or_default();
        let run = Machine::default()
            .run_traced_with(&k.program, &regs, &mem)
            .unwrap();
        let p = InOrderPipeline::default();
        let mut m = PerfectMem { latency: 1 };
        p.run(&run.trace, InOrderState { warmup: 0 }, &mut m, None)
    }

    #[test]
    fn bounds_enclose_simulation_for_kernels() {
        for k in [
            kernels::sum_loop(12),
            kernels::fib(24),
            kernels::popcount_branchy(12),
            kernels::vector_max(8, 256),
            kernels::linear_search(8, 256),
        ] {
            let b = bounds(&k.program, &WcetConfig::default());
            assert!(b.lb <= b.ub, "{}: lb {} > ub {}", k.name, b.lb, b.ub);
            // Inputs within each kernel's annotated loop bounds (fib's
            // bound annotation covers n <= 24).
            for input in [0i64, 1, 5, 13, 23] {
                let t = simulate(&k, input);
                assert!(
                    b.lb <= t && t <= b.ub,
                    "{}: simulated {} outside [{}, {}] for input {}",
                    k.name,
                    t,
                    b.lb,
                    b.ub,
                    input
                );
            }
        }
    }

    #[test]
    fn straight_line_bounds_are_tight_modulo_memory() {
        let p = tinyisa::asm::assemble("li r1, 1\nadd r2, r1, r1\nmul r3, r2, r2\nhalt").unwrap();
        let b = bounds(&p, &WcetConfig::default());
        // alu(1)+alu(1)+mul(3)+nop-class halt(1) = 6 on both sides.
        assert_eq!(b.lb, 6);
        assert_eq!(b.ub, 6);
    }

    #[test]
    fn loop_bound_scales_ub() {
        let small = kernels::sum_loop(4);
        let large = kernels::sum_loop(64);
        let cfg = WcetConfig::default();
        let b_small = bounds(&small.program, &cfg);
        let b_large = bounds(&large.program, &cfg);
        assert!(b_large.ub > b_small.ub * 8);
    }

    #[test]
    fn icache_analysis_tightens_ub() {
        let k = kernels::sum_loop(32);
        let no_cache_model = WcetConfig {
            icache: Some(CacheConfig::new(4, 2, 8)),
            fetch_hit: 0,
            fetch_miss: 8,
            ..WcetConfig::default()
        };
        let all_miss = WcetConfig {
            icache: None,
            ..WcetConfig::default()
        };
        let with_analysis = bounds(&k.program, &no_cache_model);
        // Compare against charging every fetch the miss penalty.
        let mut pessimistic = all_miss;
        pessimistic.latencies.alu += 8; // every instruction pays a miss
        let without = bounds(&k.program, &pessimistic);
        assert!(
            with_analysis.ub < without.ub,
            "must-analysis should classify loop-body refetches as hits"
        );
    }

    #[test]
    fn variable_divide_widens_bounds() {
        let p = tinyisa::asm::assemble("li r1, 100\nli r2, 3\ndiv r3, r1, r2\nhalt").unwrap();
        let fixed = bounds(
            &p,
            &WcetConfig {
                latencies: LatencyTable {
                    div_variable: false,
                    ..LatencyTable::default()
                },
                ..WcetConfig::default()
            },
        );
        let variable = bounds(
            &p,
            &WcetConfig {
                latencies: LatencyTable {
                    div_variable: true,
                    ..LatencyTable::default()
                },
                ..WcetConfig::default()
            },
        );
        assert_eq!(fixed.ub, variable.ub);
        assert!(variable.lb < fixed.lb, "early-exit divide lowers the LB");
    }
}
